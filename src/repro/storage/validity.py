"""Validity bitmaps, zone maps, and dictionary helpers for the column store.

This module is the foundation of the sentinel-free NULL representation
(ROADMAP item 3, after Gupta/Mhedhbi/Salihoglu's columnar graph storage
design): every property column carries an optional validity bitmap — NULL
is a bit, never a magic value in the data array.  On top of the bitmap
representation this module provides

* :class:`ValidityBitmap` — a growable per-column bitmap with an all-valid
  fast path (no allocation until the first NULL appears);
* :class:`ZoneMapIndex` — per-block min/max/null-count summaries consulted
  by filter pushdown to skip whole blocks before materialization, with
  dirty-block invalidation so updates never yield stale skips;
* :func:`pack_values` — canonical ingest: converts a possibly-None-bearing
  (or NaN-bearing, for floats) value sequence into ``(data, validity)``
  with inert fills under invalid slots.

Dictionary encoding for low-cardinality string columns lives in
:class:`~repro.storage.properties.PropertyColumn`, which composes these
pieces.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from ..types import DataType

#: Rows summarized by one zone-map entry.  Small enough that a skipped
#: block saves real work on LDBC-scale tables, large enough that the
#: summary arrays stay negligible.
ZONE_BLOCK_ROWS = 1024


class ValidityBitmap:
    """Growable validity bitmap for one column.

    The common case — a column with no NULLs — allocates nothing: the
    backing array is created lazily on the first invalid bit.  ``True``
    means *valid* (value present), matching Arrow's convention.
    """

    __slots__ = ("_bits", "_length")

    def __init__(self, length: int = 0) -> None:
        self._length = length
        self._bits: np.ndarray | None = None  # None == every bit valid

    def __len__(self) -> int:
        return self._length

    @property
    def all_valid(self) -> bool:
        return self._bits is None

    @property
    def nbytes(self) -> int:
        return 0 if self._bits is None else int(self._bits[: self._length].nbytes)

    def _materialize(self, capacity: int) -> np.ndarray:
        bits = np.ones(max(capacity, self._length, 1), dtype=bool)
        if self._bits is not None:
            bits[: len(self._bits)] = self._bits
        self._bits = bits
        return bits

    def _ensure_capacity(self, needed: int) -> np.ndarray:
        assert self._bits is not None
        if needed > len(self._bits):
            grown = np.ones(max(len(self._bits) * 2, needed), dtype=bool)
            grown[: len(self._bits)] = self._bits
            self._bits = grown
        return self._bits

    def append(self, valid: bool) -> None:
        index = self._length
        self._length += 1
        if self._bits is None:
            if valid:
                return
            self._materialize(max(2 * index, index + 1))
        bits = self._ensure_capacity(self._length)
        bits[index] = valid

    def extend_valid(self, count: int) -> None:
        start = self._length
        self._length += count
        if self._bits is not None:
            bits = self._ensure_capacity(self._length)
            bits[start : self._length] = True

    def extend_mask(self, mask: np.ndarray) -> None:
        start = self._length
        self._length += len(mask)
        if self._bits is None:
            if bool(mask.all()):
                return
            self._materialize(max(2 * start, self._length))
        bits = self._ensure_capacity(self._length)
        bits[start : self._length] = mask

    def get(self, index: int) -> bool:
        if self._bits is None:
            return True
        return bool(self._bits[index])

    def set(self, index: int, valid: bool) -> None:
        if self._bits is None:
            if valid:
                return
            self._materialize(max(self._length, index + 1))
        self._ensure_capacity(max(self._length, index + 1))[index] = valid

    def mask(self) -> np.ndarray | None:
        """Dense bool mask over the live prefix; ``None`` means all-valid."""
        if self._bits is None:
            return None
        return self._bits[: self._length]

    def gather(self, rows: np.ndarray) -> np.ndarray | None:
        """Validity bits for *rows*; ``None`` means every one is valid."""
        if self._bits is None:
            return None
        return self._bits[rows]

    def null_count(self) -> int:
        if self._bits is None:
            return 0
        return int(self._length - np.count_nonzero(self._bits[: self._length]))

    @classmethod
    def from_mask(cls, mask: np.ndarray | None, length: int) -> "ValidityBitmap":
        bitmap = cls(length)
        if mask is not None and not bool(np.asarray(mask).all()):
            bits = np.ones(max(length, 1), dtype=bool)
            bits[:length] = mask
            bitmap._bits = bits
        return bitmap


def pack_values(
    values: Iterable[Any] | np.ndarray, dtype: DataType
) -> tuple[np.ndarray, np.ndarray | None]:
    """Canonical ingest: ``(data, validity-mask-or-None)`` for *values*.

    Accepts Python sequences with ``None`` holes and already-typed NumPy
    arrays.  For float input, NaN is folded into the validity mask (the
    store keeps exactly one NULL representation); typed integer input is
    taken at face value — ``iinfo(int64).min`` is data, not NULL.
    """
    np_dtype = dtype.numpy_dtype
    if isinstance(values, np.ndarray) and values.dtype == np_dtype and np_dtype != object:
        data = np.array(values)  # defensive copy: the store owns its arrays
        if dtype is DataType.FLOAT64:
            nan = np.isnan(data)
            if nan.any():
                return data, ~nan
        return data, None

    items = list(values)
    mask = np.fromiter(
        (item is not None for item in items), dtype=bool, count=len(items)
    )
    if mask.all():
        data = np.asarray(items, dtype=np_dtype)
        if dtype is DataType.FLOAT64:
            nan = np.isnan(data)
            if nan.any():
                return data, ~nan
        return data, None
    fill = dtype.fill_value()
    filled = [fill if item is None else item for item in items]
    data = np.asarray(filled, dtype=np_dtype)
    if dtype is DataType.FLOAT64:
        nan = np.isnan(data)
        np.logical_and(mask, ~nan, out=mask)
        data[nan] = np.nan  # canonical fill for invalid float slots
    return data, mask


def unpack_values(
    data: np.ndarray, validity: np.ndarray | None, dtype: DataType
) -> list[Any]:
    """Python-level values with ``None`` holes (result/boundary direction)."""
    if dtype is DataType.STRING:
        out = list(data)
    elif dtype is DataType.FLOAT64:
        out = [float(v) for v in data]
    elif dtype is DataType.BOOL:
        out = [bool(v) for v in data]
    else:
        out = [int(v) for v in data]
    if validity is not None:
        out = [v if ok else None for v, ok in zip(out, validity)]
    return out


class ZoneMapIndex:
    """Per-block min/max/null-count summaries over one numeric column.

    ``candidate_blocks`` answers "which blocks *may* contain a row
    satisfying ``col <op> literal``" — the filter executor materializes
    only those.  Updates never cause stale answers: ``mark_dirty`` flags
    the touched block and :meth:`refresh` rebuilds flagged blocks (plus any
    appended tail) before the next consultation.
    """

    __slots__ = (
        "block_rows",
        "_mins",
        "_maxs",
        "_null_counts",
        "_built_rows",
        "_dirty",
        "consultations",
        "blocks_skipped",
        "blocks_total",
    )

    def __init__(self, block_rows: int = ZONE_BLOCK_ROWS) -> None:
        self.block_rows = int(block_rows)
        self._mins = np.empty(0, dtype=np.float64)
        self._maxs = np.empty(0, dtype=np.float64)
        self._null_counts = np.empty(0, dtype=np.int64)
        self._built_rows = 0
        self._dirty: set[int] = set()
        self.consultations = 0
        self.blocks_skipped = 0
        self.blocks_total = 0

    @property
    def num_blocks(self) -> int:
        return len(self._mins)

    def mark_dirty(self, row: int) -> None:
        block = row // self.block_rows
        if block < self.num_blocks:
            self._dirty.add(block)

    def invalidate(self) -> None:
        """Forget everything (bulk replacement of the column)."""
        self._built_rows = 0
        self._dirty.clear()
        self._mins = np.empty(0, dtype=np.float64)
        self._maxs = np.empty(0, dtype=np.float64)
        self._null_counts = np.empty(0, dtype=np.int64)

    def _rebuild_block(
        self, block: int, data: np.ndarray, validity: np.ndarray | None
    ) -> None:
        lo = block * self.block_rows
        hi = min(lo + self.block_rows, len(data))
        chunk = data[lo:hi].astype(np.float64, copy=False)
        if validity is None:
            valid = chunk[~np.isnan(chunk)]
            nulls = len(chunk) - len(valid)
        else:
            bits = validity[lo:hi]
            valid = chunk[bits]
            valid = valid[~np.isnan(valid)]
            nulls = len(chunk) - len(valid)
        if len(valid):
            self._mins[block] = valid.min()
            self._maxs[block] = valid.max()
        else:
            self._mins[block] = np.inf
            self._maxs[block] = -np.inf
        self._null_counts[block] = nulls

    def refresh(self, data: np.ndarray, validity: np.ndarray | None) -> None:
        """Bring the summaries up to date with the column's live prefix."""
        rows = len(data)
        blocks = -(-rows // self.block_rows) if rows else 0
        if blocks != self.num_blocks:
            for arrays in ("_mins", "_maxs", "_null_counts"):
                old = getattr(self, arrays)
                dtype = old.dtype
                grown = np.empty(blocks, dtype=dtype)
                grown[: min(len(old), blocks)] = old[: min(len(old), blocks)]
                setattr(self, arrays, grown)
        first_new = self._built_rows // self.block_rows
        rebuild = set(range(first_new, blocks))
        rebuild.update(b for b in self._dirty if b < blocks)
        for block in rebuild:
            self._rebuild_block(block, data, validity)
        self._built_rows = rows
        self._dirty.clear()

    def candidate_blocks(self, op: str, value: float) -> np.ndarray:
        """Bool array over blocks: True where the block may satisfy the op.

        Unknown operators conservatively return all-True.  NULL rows never
        satisfy a comparison, so an all-NULL block is always skippable.
        """
        self.consultations += 1
        self.blocks_total += self.num_blocks
        mins, maxs = self._mins, self._maxs
        nonempty = mins <= maxs  # blocks with at least one valid value
        if op == "<":
            keep = nonempty & (mins < value)
        elif op == "<=":
            keep = nonempty & (mins <= value)
        elif op == ">":
            keep = nonempty & (maxs > value)
        elif op == ">=":
            keep = nonempty & (maxs >= value)
        elif op == "==":
            keep = nonempty & (mins <= value) & (maxs >= value)
        else:
            keep = np.ones(self.num_blocks, dtype=bool)
        self.blocks_skipped += int(self.num_blocks - np.count_nonzero(keep))
        return keep

    def block_null_count(self, block: int) -> int:
        return int(self._null_counts[block])
