"""Zone-map-assisted filtered scans — the FilteredNodeScan source operator.

The columnar executors share one implementation: consult the property
column's per-block zone map (min/max/null-count summaries over 1024-row
blocks) to drop blocks that cannot satisfy ``prop <cmp> value``, gather
only the surviving candidate rows, and re-check the exact predicate
through the standard expression machinery so validity bitmaps and NULL
comparison semantics are identical to an unfused Filter.

Versioned/overlay views and non-numeric predicates fall back to the dense
scan path — zone maps summarize the column's full live prefix, which a
snapshot-bound view must not trust for visibility.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..plan.expressions import Cmp, Col
from ..plan.logical import FilteredNodeScan
from ..storage.graph import GraphReadView
from ..types import DataType
from .base import ArraysResolver


def _zone_literal(value: Any) -> float | None:
    """The comparison operand as a float for zone-map pruning.

    Returns ``None`` when the predicate is not prunable: non-numeric
    operands, NULL (``None``/NaN, whose comparison semantics the exact
    re-check must decide), and bools (kept off the numeric fast path).
    """
    if isinstance(value, (bool, np.bool_)):
        return None
    if isinstance(value, (int, np.integer)):
        return float(value)
    if isinstance(value, (float, np.floating)) and value == value:
        return float(value)
    return None


def _candidate_rows(
    rows: np.ndarray, keep: np.ndarray, block_rows: int
) -> np.ndarray:
    """Restrict *rows* to those inside zone-map candidate blocks.

    The common tombstone-free scan hands in a contiguous row range; there
    the kept blocks' spans are emitted directly instead of dividing and
    fancy-indexing the full row array.
    """
    if keep.all():
        return rows
    lo, hi = int(rows[0]), int(rows[-1]) + 1
    if hi - lo == len(rows):  # contiguous: rows == arange(lo, hi)
        spans = [
            np.arange(max(block * block_rows, lo), min((block + 1) * block_rows, hi))
            for block in np.flatnonzero(keep)
            if block * block_rows < hi and (block + 1) * block_rows > lo
        ]
        if not spans:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(spans)
    return rows[keep[rows // block_rows]]


def filtered_scan(
    view: GraphReadView,
    op: FilteredNodeScan,
    params: Mapping[str, Any],
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, DataType]:
    """Rows of ``op.label`` satisfying the predicate, plus their property
    values and validity (``None`` == all valid) and the column dtype.
    """
    dtype = view.schema.vertex_label(op.label).property(op.prop).dtype
    rows = view.all_rows(op.label)
    literal = _zone_literal(op.value.eval_row({}, params))
    if literal is not None and view.version is None and len(rows):
        column = view.store.table(op.label).column(op.prop)
        if column.supports_zone_map:
            zone_map = column.zone_map()
            keep = zone_map.candidate_blocks(op.cmp, literal)
            rows = _candidate_rows(rows, keep, zone_map.block_rows)
    values, validity = view.gather_properties_with_validity(op.label, op.prop, rows)
    resolver = ArraysResolver(
        {op.out: values}, {op.out: dtype}, validity={op.out: validity}
    )
    mask = np.asarray(
        Cmp(op.cmp, Col(op.out), op.value).eval_block(resolver, params), dtype=bool
    )
    return (
        rows[mask],
        values[mask],
        None if validity is None else validity[mask],
        dtype,
    )
