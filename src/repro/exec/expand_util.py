"""Shared neighbor-expansion machinery for the Expand operator.

Both the flat and the factorized executor ultimately need, for a batch of
source rows, the per-source neighbor lists plus any edge/neighbor property
columns, with pushed-down predicates applied *during* the expansion (the
FilterPushDown fusion).  This module computes that once so the executors
differ only in how they organize the result (replicated flat tuples vs. an
f-Tree child node).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..errors import ExecutionError
from ..plan.logical import Expand
from ..storage.catalog import AdjacencyKey
from ..storage.graph import GraphReadView
from ..resilience.watchdog import Deadline
from ..types import DataType, NULL_INT
from .base import ArraysResolver


@dataclass
class ExpandBatch:
    """Result of expanding a batch of sources.

    ``counts[i]`` neighbors belong to source i, stored consecutively in
    ``neighbors``; ``extra`` maps output column name to (dtype, array)
    aligned with ``neighbors``.
    """

    counts: np.ndarray
    neighbors: np.ndarray
    extra: dict[str, tuple[DataType, np.ndarray]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.neighbors)


def resolve_expand_keys(
    view: GraphReadView, op: Expand, from_label: str
) -> list[AdjacencyKey]:
    """The adjacency keys this Expand must union over (schema lookup)."""
    return view.schema.expand_keys(op.edge_label, op.direction, from_label, op.to_label)


def _vectorized_single_hop(
    view: GraphReadView,
    key: AdjacencyKey,
    from_rows: np.ndarray,
    edge_props: Mapping[str, str],
) -> ExpandBatch:
    """One-key expansion as pure NumPy kernels over adjMeta (paper §5).

    The per-source (offset, length) pairs come from one fancy-index over
    ``adjMeta``; neighbor ids and aligned edge properties are gathered with
    a single repeat/arange slot computation — the "vectorization" the
    paper applies to its factorized executor, reused by the flat variant
    so the comparison stays about representation, not loop overhead.
    """
    adjacency = view.adjacency(key)
    rows = np.asarray(from_rows, dtype=np.int64)
    base, starts, lengths = adjacency.meta_for(rows)
    total = int(lengths.sum())
    if total == 0:
        return ExpandBatch(
            lengths,
            np.empty(0, dtype=np.int64),
            {
                out: (
                    _edge_prop_dtype(view, [key], prop),
                    np.empty(0, dtype=_edge_prop_dtype(view, [key], prop).numpy_dtype),
                )
                for out, prop in edge_props.items()
            },
        )
    offsets = np.zeros(len(lengths), dtype=np.int64)
    if len(lengths) > 1:
        np.cumsum(lengths[:-1], out=offsets[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, lengths)
    slots = np.repeat(starts, lengths) + within
    neighbors = base[slots]
    extra: dict[str, tuple[DataType, np.ndarray]] = {}
    for out, prop in edge_props.items():
        dtype = _edge_prop_dtype(view, [key], prop)
        extra[out] = (dtype, adjacency.gather_prop(prop, slots))
    return ExpandBatch(lengths, neighbors, extra)


def _single_hop_chunks(
    view: GraphReadView,
    keys: list[AdjacencyKey],
    from_rows: np.ndarray,
    edge_props: Mapping[str, str],
    deadline: Deadline | None = None,
) -> tuple[np.ndarray, list[np.ndarray], dict[str, list[np.ndarray]]]:
    """Per-source neighbor chunks plus aligned edge-property chunks."""
    counts = np.zeros(len(from_rows), dtype=np.int64)
    neighbor_chunks: list[np.ndarray] = []
    prop_chunks: dict[str, list[np.ndarray]] = {out: [] for out in edge_props}
    for i, row in enumerate(from_rows):
        # Inline stride: a method call per row costs more than the check.
        if deadline is not None and not i & 1023:
            deadline.check()
        row = int(row)
        if row == NULL_INT:
            continue
        for key in keys:
            if edge_props:
                slots = view.neighbor_slots(key, row)
                if len(slots) == 0:
                    continue
                adjacency = view.adjacency(key)
                targets = np.asarray(
                    [adjacency.target_at(int(s)) for s in slots], dtype=np.int64
                )
                neighbor_chunks.append(targets)
                counts[i] += len(targets)
                for out, prop in edge_props.items():
                    prop_chunks[out].append(adjacency.gather_prop(prop, slots))
            else:
                nbrs = view.neighbors(key, row)
                if len(nbrs):
                    neighbor_chunks.append(nbrs)
                    counts[i] += len(nbrs)
    return counts, neighbor_chunks, prop_chunks


def _multi_hop_per_source(
    view: GraphReadView,
    keys: list[AdjacencyKey],
    row: int,
    op: Expand,
    deadline: Deadline | None = None,
) -> np.ndarray:
    """BFS from one source: distinct vertices at depth min_hops..max_hops.

    Vertices are deduplicated at their *minimum* depth and the start vertex
    is never re-reached — the LDBC "friends and friends of friends,
    excluding the start person" semantics that every variable-length
    pattern in the workload uses.  Vertices of one depth level are emitted
    in sorted row order (level-synchronized frontier).
    """
    if len(keys) == 1 and view.version is None and view.adjacency(keys[0]).supports_segments:
        return _multi_hop_vectorized(view, keys[0], row, op)
    seen: dict[int, int] = {row: 0}
    frontier = [row]
    collected: list[int] = []
    for depth in range(1, op.max_hops + 1):
        next_frontier: list[int] = []
        for j, current in enumerate(frontier):
            if deadline is not None and not j & 255:
                deadline.check()
            for key in keys:
                for neighbor in view.neighbors(key, current):
                    neighbor = int(neighbor)
                    if neighbor in seen:
                        continue
                    seen[neighbor] = depth
                    next_frontier.append(neighbor)
                    if depth >= op.min_hops:
                        collected.append(neighbor)
        frontier = next_frontier
        if not frontier:
            break
    return np.asarray(sorted(collected), dtype=np.int64)


def _multi_hop_vectorized(
    view: GraphReadView, key: AdjacencyKey, row: int, op: Expand
) -> np.ndarray:
    """Level-synchronized BFS as NumPy set kernels (one adjMeta gather,
    one neighbor gather, and a setdiff per level)."""
    adjacency = view.adjacency(key)
    seen = np.asarray([row], dtype=np.int64)
    frontier = seen
    collected: list[np.ndarray] = []
    for depth in range(1, op.max_hops + 1):
        base, starts, lengths = adjacency.meta_for(frontier)
        total = int(lengths.sum())
        if total == 0:
            break
        offsets = np.zeros(len(lengths), dtype=np.int64)
        if len(lengths) > 1:
            np.cumsum(lengths[:-1], out=offsets[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, lengths)
        neighbors = base[np.repeat(starts, lengths) + within]
        fresh = np.setdiff1d(neighbors, seen)  # sorted, deduplicated
        if len(fresh) == 0:
            break
        if depth >= op.min_hops:
            collected.append(fresh)
        seen = np.concatenate([seen, fresh])
        frontier = fresh
    if not collected:
        return np.empty(0, dtype=np.int64)
    # Sorted output keeps multi-hop results deterministic and identical
    # across all executor variants (membership is depth-defined; order
    # within the reached set is not semantically meaningful).
    return np.sort(np.concatenate(collected))


def expand_batch(
    view: GraphReadView,
    op: Expand,
    from_rows: np.ndarray,
    from_label: str,
    to_label: str,
    params: Mapping[str, Any],
    deadline: Deadline | None = None,
) -> ExpandBatch:
    """Expand every source row, applying pushed-down work along the way.

    *deadline*, when given, is ticked at chunk boundaries (once per source
    vertex, strided inside BFS frontiers) so a variable-length expansion —
    the dominant cost of the long IC queries — cancels mid-flight instead
    of finishing an already-doomed query.
    """
    keys = resolve_expand_keys(view, op, from_label)

    if op.is_multi_hop:
        chunks = [
            _multi_hop_per_source(view, keys, int(row), op, deadline)
            if int(row) != NULL_INT
            else np.empty(0, dtype=np.int64)
            for row in from_rows
        ]
        counts = np.asarray([len(c) for c in chunks], dtype=np.int64)
        neighbors = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        batch = ExpandBatch(counts, neighbors)
    elif (
        len(keys) == 1
        and view.version is None
        and view.adjacency(keys[0]).supports_segments
    ):
        batch = _vectorized_single_hop(view, keys[0], from_rows, op.edge_props)
    else:
        counts, neighbor_chunks, prop_chunks = _single_hop_chunks(
            view, keys, from_rows, op.edge_props, deadline
        )
        neighbors = (
            np.concatenate(neighbor_chunks)
            if neighbor_chunks
            else np.empty(0, dtype=np.int64)
        )
        extra: dict[str, tuple[DataType, np.ndarray]] = {}
        for out, prop in op.edge_props.items():
            dtype = _edge_prop_dtype(view, keys, prop)
            chunks = prop_chunks[out]
            extra[out] = (
                dtype,
                np.concatenate(chunks)
                if chunks
                else np.empty(0, dtype=dtype.numpy_dtype),
            )
        batch = ExpandBatch(counts, neighbors, extra)

    _apply_neighbor_props(view, op, batch, to_label)
    _apply_neighbor_filter(view, op, batch, params)
    if op.optional:
        batch = _pad_optional(batch)
    return batch


def _edge_prop_dtype(
    view: GraphReadView, keys: list[AdjacencyKey], prop: str
) -> DataType:
    for key in keys:
        for prop_def in view.adjacency(key).property_defs:
            if prop_def.name == prop:
                return prop_def.dtype
    raise ExecutionError(f"edge property {prop!r} not found on {keys}")


def _apply_neighbor_props(
    view: GraphReadView, op: Expand, batch: ExpandBatch, to_label: str
) -> None:
    """Gather destination-vertex properties requested by the pushdown."""
    if not op.neighbor_props:
        return
    label_def = view.schema.vertex_label(to_label)
    for out, prop in op.neighbor_props.items():
        dtype = label_def.property(prop).dtype
        if batch.total:
            values = view.gather_properties(to_label, prop, batch.neighbors)
        else:
            values = np.empty(0, dtype=dtype.numpy_dtype)
        batch.extra[out] = (dtype, values)


def _apply_neighbor_filter(
    view: GraphReadView, op: Expand, batch: ExpandBatch, params: Mapping[str, Any]
) -> None:
    """Evaluate the pushed-down predicate and drop rejected neighbors."""
    if op.neighbor_filter is None or batch.total == 0:
        return
    arrays: dict[str, np.ndarray] = {op.to_var: batch.neighbors}
    dtypes: dict[str, DataType] = {op.to_var: DataType.INT64}
    for name, (dtype, values) in batch.extra.items():
        arrays[name] = values
        dtypes[name] = dtype
    resolver = ArraysResolver(arrays, dtypes)
    mask = np.asarray(op.neighbor_filter.eval_block(resolver, params), dtype=bool)
    if mask.all():
        return
    # Recompute per-source counts as segment sums of the surviving mask.
    boundaries = np.zeros(len(batch.counts) + 1, dtype=np.int64)
    np.cumsum(batch.counts, out=boundaries[1:])
    prefix = np.zeros(len(mask) + 1, dtype=np.int64)
    np.cumsum(mask, out=prefix[1:])
    batch.counts = prefix[boundaries[1:]] - prefix[boundaries[:-1]]
    batch.neighbors = batch.neighbors[mask]
    batch.extra = {
        name: (dtype, values[mask]) for name, (dtype, values) in batch.extra.items()
    }


def _pad_optional(batch: ExpandBatch) -> ExpandBatch:
    """Give every source with zero matches one NULL neighbor row."""
    empty = batch.counts == 0
    if not empty.any():
        return batch
    new_counts = batch.counts.copy()
    new_counts[empty] = 1
    total = int(new_counts.sum())
    neighbors = np.empty(total, dtype=np.int64)
    extra = {
        name: (dtype, np.empty(total, dtype=values.dtype))
        for name, (dtype, values) in batch.extra.items()
    }
    write = 0
    read = 0
    for i, count in enumerate(batch.counts):
        count = int(count)
        if count == 0:
            neighbors[write] = NULL_INT
            for name, (dtype, out_values) in extra.items():
                out_values[write] = dtype.null_value()
            write += 1
        else:
            neighbors[write : write + count] = batch.neighbors[read : read + count]
            for name, (dtype, out_values) in extra.items():
                out_values[write : write + count] = batch.extra[name][1][
                    read : read + count
                ]
            write += count
            read += count
    return ExpandBatch(new_counts, neighbors, extra)
