"""Shared neighbor-expansion machinery for the Expand operator.

Both the flat and the factorized executor ultimately need, for a batch of
source rows, the per-source neighbor lists plus any edge/neighbor property
columns, with pushed-down predicates applied *during* the expansion (the
FilterPushDown fusion).  This module computes that once so the executors
differ only in how they organize the result (replicated flat tuples vs. an
f-Tree child node).

NULL handling is bitmap-native: source rows can carry a validity mask
(optional-match outputs), every property column in ``extra`` carries its
own optional validity, and optional padding clears the neighbor column's
validity bit instead of writing a sentinel row id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..errors import ExecutionError
from ..plan.logical import Expand
from ..storage.catalog import AdjacencyKey
from ..storage.graph import GraphReadView
from ..resilience.watchdog import Deadline
from ..types import DataType
from .base import ArraysResolver


@dataclass
class ExpandBatch:
    """Result of expanding a batch of sources.

    ``counts[i]`` neighbors belong to source i, stored consecutively in
    ``neighbors``; ``extra`` maps output column name to
    (dtype, array, validity) aligned with ``neighbors``.  ``validity`` is
    the neighbor column's own mask — only optional padding clears bits.
    """

    counts: np.ndarray
    neighbors: np.ndarray
    extra: dict[str, tuple[DataType, np.ndarray, np.ndarray | None]] = field(
        default_factory=dict
    )
    validity: np.ndarray | None = None

    @property
    def total(self) -> int:
        return len(self.neighbors)


def resolve_expand_keys(
    view: GraphReadView, op: Expand, from_label: str
) -> list[AdjacencyKey]:
    """The adjacency keys this Expand must union over (schema lookup)."""
    return view.schema.expand_keys(op.edge_label, op.direction, from_label, op.to_label)


def _vectorized_single_hop(
    view: GraphReadView,
    key: AdjacencyKey,
    from_rows: np.ndarray,
    edge_props: Mapping[str, str],
) -> ExpandBatch:
    """One-key expansion as pure NumPy kernels over adjMeta (paper §5).

    The per-source (offset, length) pairs come from one fancy-index over
    ``adjMeta``; neighbor ids and aligned edge properties are gathered with
    a single repeat/arange slot computation — the "vectorization" the
    paper applies to its factorized executor, reused by the flat variant
    so the comparison stays about representation, not loop overhead.
    """
    adjacency = view.adjacency(key)
    rows = np.asarray(from_rows, dtype=np.int64)
    base, starts, lengths = adjacency.meta_for(rows)
    total = int(lengths.sum())
    if total == 0:
        return ExpandBatch(
            lengths,
            np.empty(0, dtype=np.int64),
            {
                out: (
                    _edge_prop_dtype(view, [key], prop),
                    np.empty(0, dtype=_edge_prop_dtype(view, [key], prop).numpy_dtype),
                    None,
                )
                for out, prop in edge_props.items()
            },
        )
    offsets = np.zeros(len(lengths), dtype=np.int64)
    if len(lengths) > 1:
        np.cumsum(lengths[:-1], out=offsets[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, lengths)
    slots = np.repeat(starts, lengths) + within
    neighbors = base[slots]
    extra: dict[str, tuple[DataType, np.ndarray, np.ndarray | None]] = {}
    for out, prop in edge_props.items():
        dtype = _edge_prop_dtype(view, [key], prop)
        extra[out] = (
            dtype,
            adjacency.gather_prop(prop, slots),
            adjacency.gather_prop_validity(prop, slots),
        )
    return ExpandBatch(lengths, neighbors, extra)


def _single_hop_chunks(
    view: GraphReadView,
    keys: list[AdjacencyKey],
    from_rows: np.ndarray,
    edge_props: Mapping[str, str],
    deadline: Deadline | None = None,
    from_validity: np.ndarray | None = None,
) -> tuple[
    np.ndarray,
    list[np.ndarray],
    dict[str, list[np.ndarray]],
    dict[str, list[np.ndarray | None]],
]:
    """Per-source neighbor chunks plus aligned edge-property chunks."""
    counts = np.zeros(len(from_rows), dtype=np.int64)
    neighbor_chunks: list[np.ndarray] = []
    prop_chunks: dict[str, list[np.ndarray]] = {out: [] for out in edge_props}
    prop_valid_chunks: dict[str, list[np.ndarray | None]] = {out: [] for out in edge_props}
    for i, row in enumerate(from_rows):
        # Inline stride: a method call per row costs more than the check.
        if deadline is not None and not i & 1023:
            deadline.check()
        if from_validity is not None and not from_validity[i]:
            continue  # NULL source (optional match): contributes no neighbors
        row = int(row)
        for key in keys:
            if edge_props:
                slots = view.neighbor_slots(key, row)
                if len(slots) == 0:
                    continue
                adjacency = view.adjacency(key)
                targets = np.asarray(
                    [adjacency.target_at(int(s)) for s in slots], dtype=np.int64
                )
                neighbor_chunks.append(targets)
                counts[i] += len(targets)
                for out, prop in edge_props.items():
                    prop_chunks[out].append(adjacency.gather_prop(prop, slots))
                    prop_valid_chunks[out].append(
                        adjacency.gather_prop_validity(prop, slots)
                    )
            else:
                nbrs = view.neighbors(key, row)
                if len(nbrs):
                    neighbor_chunks.append(nbrs)
                    counts[i] += len(nbrs)
    return counts, neighbor_chunks, prop_chunks, prop_valid_chunks


def _multi_hop_per_source(
    view: GraphReadView,
    keys: list[AdjacencyKey],
    row: int,
    op: Expand,
    deadline: Deadline | None = None,
) -> np.ndarray:
    """BFS from one source: distinct vertices at depth min_hops..max_hops.

    Vertices are deduplicated at their *minimum* depth and the start vertex
    is never re-reached — the LDBC "friends and friends of friends,
    excluding the start person" semantics that every variable-length
    pattern in the workload uses.  Vertices of one depth level are emitted
    in sorted row order (level-synchronized frontier).
    """
    if len(keys) == 1 and view.version is None and view.adjacency(keys[0]).supports_segments:
        return _multi_hop_vectorized(view, keys[0], row, op)
    seen: dict[int, int] = {row: 0}
    frontier = [row]
    collected: list[int] = []
    for depth in range(1, op.max_hops + 1):
        next_frontier: list[int] = []
        for j, current in enumerate(frontier):
            if deadline is not None and not j & 255:
                deadline.check()
            for key in keys:
                for neighbor in view.neighbors(key, current):
                    neighbor = int(neighbor)
                    if neighbor in seen:
                        continue
                    seen[neighbor] = depth
                    next_frontier.append(neighbor)
                    if depth >= op.min_hops:
                        collected.append(neighbor)
        frontier = next_frontier
        if not frontier:
            break
    return np.asarray(sorted(collected), dtype=np.int64)


def _multi_hop_vectorized(
    view: GraphReadView, key: AdjacencyKey, row: int, op: Expand
) -> np.ndarray:
    """Level-synchronized BFS as NumPy set kernels (one adjMeta gather,
    one neighbor gather, and a setdiff per level)."""
    adjacency = view.adjacency(key)
    seen = np.asarray([row], dtype=np.int64)
    frontier = seen
    collected: list[np.ndarray] = []
    for depth in range(1, op.max_hops + 1):
        base, starts, lengths = adjacency.meta_for(frontier)
        total = int(lengths.sum())
        if total == 0:
            break
        offsets = np.zeros(len(lengths), dtype=np.int64)
        if len(lengths) > 1:
            np.cumsum(lengths[:-1], out=offsets[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, lengths)
        neighbors = base[np.repeat(starts, lengths) + within]
        fresh = np.setdiff1d(neighbors, seen)  # sorted, deduplicated
        if len(fresh) == 0:
            break
        if depth >= op.min_hops:
            collected.append(fresh)
        seen = np.concatenate([seen, fresh])
        frontier = fresh
    if not collected:
        return np.empty(0, dtype=np.int64)
    # Sorted output keeps multi-hop results deterministic and identical
    # across all executor variants (membership is depth-defined; order
    # within the reached set is not semantically meaningful).
    return np.sort(np.concatenate(collected))


def expand_batch(
    view: GraphReadView,
    op: Expand,
    from_rows: np.ndarray,
    from_label: str,
    to_label: str,
    params: Mapping[str, Any],
    deadline: Deadline | None = None,
    from_validity: np.ndarray | None = None,
) -> ExpandBatch:
    """Expand every source row, applying pushed-down work along the way.

    *from_validity* marks NULL sources (a previous optional match): those
    rows contribute zero neighbors.  *deadline*, when given, is ticked at
    chunk boundaries (once per source vertex, strided inside BFS frontiers)
    so a variable-length expansion — the dominant cost of the long IC
    queries — cancels mid-flight instead of finishing an already-doomed
    query.
    """
    keys = resolve_expand_keys(view, op, from_label)

    if op.is_multi_hop:
        chunks = [
            _multi_hop_per_source(view, keys, int(row), op, deadline)
            if from_validity is None or from_validity[i]
            else np.empty(0, dtype=np.int64)
            for i, row in enumerate(from_rows)
        ]
        counts = np.asarray([len(c) for c in chunks], dtype=np.int64)
        neighbors = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        batch = ExpandBatch(counts, neighbors)
    elif (
        len(keys) == 1
        and view.version is None
        and view.adjacency(keys[0]).supports_segments
        and (from_validity is None or bool(from_validity.all()))
    ):
        batch = _vectorized_single_hop(view, keys[0], from_rows, op.edge_props)
    else:
        counts, neighbor_chunks, prop_chunks, prop_valid_chunks = _single_hop_chunks(
            view, keys, from_rows, op.edge_props, deadline, from_validity
        )
        neighbors = (
            np.concatenate(neighbor_chunks)
            if neighbor_chunks
            else np.empty(0, dtype=np.int64)
        )
        extra: dict[str, tuple[DataType, np.ndarray, np.ndarray | None]] = {}
        for out, prop in op.edge_props.items():
            dtype = _edge_prop_dtype(view, keys, prop)
            chunks = prop_chunks[out]
            values = (
                np.concatenate(chunks)
                if chunks
                else np.empty(0, dtype=dtype.numpy_dtype)
            )
            extra[out] = (dtype, values, _merge_validity_chunks(chunks, prop_valid_chunks[out]))
        batch = ExpandBatch(counts, neighbors, extra)

    _apply_neighbor_props(view, op, batch, to_label)
    _apply_neighbor_filter(view, op, batch, params)
    if op.optional:
        batch = _pad_optional(batch)
    return batch


def _merge_validity_chunks(
    value_chunks: list[np.ndarray], valid_chunks: list[np.ndarray | None]
) -> np.ndarray | None:
    """Concatenate per-chunk validity masks; None when every bit is set."""
    if not value_chunks or all(v is None for v in valid_chunks):
        return None
    return np.concatenate(
        [
            np.ones(len(values), dtype=bool) if valid is None else valid
            for values, valid in zip(value_chunks, valid_chunks)
        ]
    )


def _edge_prop_dtype(
    view: GraphReadView, keys: list[AdjacencyKey], prop: str
) -> DataType:
    for key in keys:
        for prop_def in view.adjacency(key).property_defs:
            if prop_def.name == prop:
                return prop_def.dtype
    raise ExecutionError(f"edge property {prop!r} not found on {keys}")


def _apply_neighbor_props(
    view: GraphReadView, op: Expand, batch: ExpandBatch, to_label: str
) -> None:
    """Gather destination-vertex properties requested by the pushdown."""
    if not op.neighbor_props:
        return
    label_def = view.schema.vertex_label(to_label)
    for out, prop in op.neighbor_props.items():
        dtype = label_def.property(prop).dtype
        if batch.total:
            values, validity = view.gather_properties_with_validity(
                to_label, prop, batch.neighbors
            )
        else:
            values, validity = np.empty(0, dtype=dtype.numpy_dtype), None
        batch.extra[out] = (dtype, values, validity)


def _apply_neighbor_filter(
    view: GraphReadView, op: Expand, batch: ExpandBatch, params: Mapping[str, Any]
) -> None:
    """Evaluate the pushed-down predicate and drop rejected neighbors."""
    if op.neighbor_filter is None or batch.total == 0:
        return
    arrays: dict[str, np.ndarray] = {op.to_var: batch.neighbors}
    dtypes: dict[str, DataType] = {op.to_var: DataType.INT64}
    validity: dict[str, np.ndarray | None] = {}
    for name, (dtype, values, valid) in batch.extra.items():
        arrays[name] = values
        dtypes[name] = dtype
        validity[name] = valid
    resolver = ArraysResolver(arrays, dtypes, validity)
    mask = np.asarray(op.neighbor_filter.eval_block(resolver, params), dtype=bool)
    if mask.all():
        return
    # Recompute per-source counts as segment sums of the surviving mask.
    boundaries = np.zeros(len(batch.counts) + 1, dtype=np.int64)
    np.cumsum(batch.counts, out=boundaries[1:])
    prefix = np.zeros(len(mask) + 1, dtype=np.int64)
    np.cumsum(mask, out=prefix[1:])
    batch.counts = prefix[boundaries[1:]] - prefix[boundaries[:-1]]
    batch.neighbors = batch.neighbors[mask]
    batch.extra = {
        name: (dtype, values[mask], None if valid is None else valid[mask])
        for name, (dtype, values, valid) in batch.extra.items()
    }


def _pad_optional(batch: ExpandBatch) -> ExpandBatch:
    """Give every source with zero matches one NULL neighbor row.

    The NULL is a cleared validity bit on the neighbor column (and on every
    extra property column); the backing slot holds the dtype's inert fill.
    """
    empty = batch.counts == 0
    if not empty.any():
        return batch
    new_counts = batch.counts.copy()
    new_counts[empty] = 1
    total = int(new_counts.sum())
    neighbors = np.full(total, DataType.INT64.fill_value(), dtype=np.int64)
    neighbor_valid = np.ones(total, dtype=bool)
    extra = {
        name: (
            dtype,
            np.empty(total, dtype=values.dtype),
            np.ones(total, dtype=bool),
        )
        for name, (dtype, values, _valid) in batch.extra.items()
    }
    write = 0
    read = 0
    for i, count in enumerate(batch.counts):
        count = int(count)
        if count == 0:
            neighbor_valid[write] = False
            for name, (dtype, out_values, out_valid) in extra.items():
                out_values[write] = dtype.fill_value()
                out_valid[write] = False
            write += 1
        else:
            span = slice(write, write + count)
            neighbors[span] = batch.neighbors[read : read + count]
            for name, (dtype, out_values, out_valid) in extra.items():
                _, src_values, src_valid = batch.extra[name]
                out_values[span] = src_values[read : read + count]
                if src_valid is not None:
                    out_valid[span] = src_valid[read : read + count]
            write += count
            read += count
    final_extra = {
        name: (dtype, values, None if valid.all() else valid)
        for name, (dtype, values, valid) in extra.items()
    }
    return ExpandBatch(new_counts, neighbors, final_extra, neighbor_valid)
