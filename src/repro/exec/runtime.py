"""The Runtime component (paper §2.1): query workload parallelism.

Three execution modes:

* **sequential** — one query at a time on the calling thread;
* **inter-query parallel** — a thread pool running independent queries
  concurrently (reads are non-blocking under MV2PL);
* **simulated multi-worker service** — a discrete-event N-server queue fed
  with real measured service times.  This is the substitution (see
  DESIGN.md) for the paper's 1–64 vCPU scalability runs: Python's GIL makes
  thread scaling meaningless for CPU-bound queries, but given measured
  single-worker service times the queueing behaviour of the Runtime is
  exactly reproducible.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..resilience.watchdog import current_deadline, deadline_scope


def run_sequential(tasks: Sequence[Callable[[], Any]]) -> list[Any]:
    """Run tasks one after another, returning their results in order.

    An ambient deadline (if one is installed) is checked between tasks, so
    a multi-stage query past its budget stops at the next stage boundary.
    """
    deadline = current_deadline()
    results = []
    for task in tasks:
        if deadline is not None:
            deadline.check()
        results.append(task())
    return results


def run_inter_query(tasks: Sequence[Callable[[], Any]], workers: int) -> list[Any]:
    """Run independent queries on a thread pool (inter-query parallelism).

    The caller's ambient deadline is re-installed on each worker thread
    (deadlines are thread-local), so pooled queries inherit the submitting
    query's budget instead of silently running unbounded.
    """
    if workers <= 1:
        return run_sequential(tasks)
    deadline = current_deadline()

    def bounded(task: Callable[[], Any]) -> Any:
        with deadline_scope(deadline):
            return task()

    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(bounded, task) for task in tasks]
        return [f.result() for f in futures]


@dataclass
class SimulationResult:
    """Outcome of a discrete-event service simulation."""

    completion_times: np.ndarray
    latencies: np.ndarray
    makespan: float

    @property
    def throughput(self) -> float:
        """Operations per second over the simulated makespan."""
        if self.makespan <= 0:
            return 0.0
        return len(self.completion_times) / self.makespan


def simulate_service(
    arrival_times: np.ndarray, service_times: np.ndarray, workers: int
) -> SimulationResult:
    """Simulate an N-server queue processing the given operation stream.

    Operations are served FIFO in arrival order; each worker serves one
    operation at a time.  ``latencies`` include queueing delay, so driving
    the simulation with a too-aggressive schedule shows up as delayed
    queries exactly like a real benchmark run (the LDBC TCR audit).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    arrival_times = np.asarray(arrival_times, dtype=np.float64)
    service_times = np.asarray(service_times, dtype=np.float64)
    if len(arrival_times) != len(service_times):
        raise ValueError("arrival/service arrays must align")
    order = np.argsort(arrival_times, kind="stable")
    free_at: list[float] = [0.0] * workers
    heapq.heapify(free_at)
    completions = np.zeros(len(arrival_times), dtype=np.float64)
    for idx in order:
        worker_free = heapq.heappop(free_at)
        start = max(float(arrival_times[idx]), worker_free)
        done = start + float(service_times[idx])
        completions[idx] = done
        heapq.heappush(free_at, done)
    latencies = completions - arrival_times
    makespan = float(completions.max() - arrival_times.min()) if len(completions) else 0.0
    return SimulationResult(completions, latencies, makespan)
