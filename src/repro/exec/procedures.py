"""Stored procedures: complex traversals executed directly on storage.

The paper implements traversal operators such as the ShortestPath of IC13
"as stored procedures, where intermediate data is hard to factorize"
(Table 2 note).  Procedures run against the graph read view, produce a flat
block, and their internal state is *not* charged to the query's
intermediate-result accounting — matching the paper's methodology.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..core.flatblock import FlatBlock
from ..errors import ExecutionError
from ..storage.catalog import AdjacencyKey, Direction
from ..storage.graph import GraphReadView
from ..types import DataType

ProcedureFn = Callable[[GraphReadView, dict[str, Any]], FlatBlock]

_REGISTRY: dict[str, ProcedureFn] = {}


def register_procedure(name: str) -> Callable[[ProcedureFn], ProcedureFn]:
    """Decorator registering a stored procedure under *name*."""

    def decorator(fn: ProcedureFn) -> ProcedureFn:
        _REGISTRY[name] = fn
        return fn

    return decorator


def get_procedure(name: str) -> ProcedureFn:
    """Look up a registered stored procedure by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExecutionError(f"unknown stored procedure {name!r}") from None


_KNOWS = AdjacencyKey("Person", "KNOWS", "Person", Direction.OUT)


def _bfs_levels(
    view: GraphReadView, start_row: int, goal_row: int | None = None, max_depth: int | None = None
) -> tuple[dict[int, int], int]:
    """BFS over KNOWS; returns (row -> depth, depth of goal or -1)."""
    depths = {start_row: 0}
    frontier = [start_row]
    depth = 0
    while frontier:
        if goal_row is not None and goal_row in depths:
            return depths, depths[goal_row]
        if max_depth is not None and depth >= max_depth:
            break
        depth += 1
        next_frontier: list[int] = []
        for row in frontier:
            for neighbor in view.neighbors(_KNOWS, row):
                neighbor = int(neighbor)
                if neighbor not in depths:
                    depths[neighbor] = depth
                    next_frontier.append(neighbor)
        frontier = next_frontier
    goal_depth = depths.get(goal_row, -1) if goal_row is not None else -1
    return depths, goal_depth


@register_procedure("shortest_path_length")
def shortest_path_length(view: GraphReadView, args: dict[str, Any]) -> FlatBlock:
    """IC13: length of the shortest KNOWS path between two persons (-1 if none)."""
    src = view.vertex_by_key("Person", int(args["person1_id"]))
    dst = view.vertex_by_key("Person", int(args["person2_id"]))
    if src is None or dst is None:
        length = -1
    elif src == dst:
        length = 0
    else:
        _, length = _bfs_levels(view, src, goal_row=dst)
    return FlatBlock.from_dict({"length": (DataType.INT64, [length])})


def _enumerate_shortest_paths(
    view: GraphReadView, src: int, dst: int, max_paths: int = 1000
) -> list[list[int]]:
    """All shortest KNOWS paths src->dst (row indices), capped at max_paths."""
    depths, goal_depth = _bfs_levels(view, src, goal_row=dst)
    if goal_depth < 0:
        return []
    if goal_depth == 0:
        return [[src]]
    # Walk backwards from dst along strictly-decreasing depth.
    paths: list[list[int]] = []
    stack: list[list[int]] = [[dst]]
    while stack and len(paths) < max_paths:
        partial = stack.pop()
        head = partial[-1]
        head_depth = depths[head]
        if head_depth == 0:
            paths.append(list(reversed(partial)))
            continue
        for neighbor in view.neighbors(_KNOWS, head):
            neighbor = int(neighbor)
            if depths.get(neighbor, -1) == head_depth - 1:
                stack.append(partial + [neighbor])
    return paths


def _interaction_weight(view: GraphReadView, a: int, b: int) -> float:
    """LDBC IC14 pair weight: 1.0 per reply-to-post, 0.5 per reply-to-comment
    between persons *a* and *b* (both directions)."""
    creator_in = AdjacencyKey("Person", "HAS_CREATOR", "Message", Direction.IN)
    reply_of = AdjacencyKey("Message", "REPLY_OF", "Message", Direction.OUT)
    has_creator = AdjacencyKey("Message", "HAS_CREATOR", "Person", Direction.OUT)
    table = view.store.table("Message")
    is_post = table.column("isPost").view()

    weight = 0.0
    for author, other in ((a, b), (b, a)):
        for message in view.neighbors(creator_in, author):
            message = int(message)
            parents = view.neighbors(reply_of, message)
            if len(parents) == 0:
                continue  # a post, not a reply
            parent = int(parents[0])
            parent_creators = view.neighbors(has_creator, parent)
            if len(parent_creators) and int(parent_creators[0]) == other:
                weight += 1.0 if bool(is_post[parent]) else 0.5
    return weight


@register_procedure("weighted_shortest_paths")
def weighted_shortest_paths(view: GraphReadView, args: dict[str, Any]) -> FlatBlock:
    """IC14: all shortest KNOWS paths between two persons with trust weights.

    Returns (pathPersonIds, pathWeight) ordered by weight descending; person
    ids inside a path are joined with ``,`` for a flat representation.
    """
    src = view.vertex_by_key("Person", int(args["person1_id"]))
    dst = view.vertex_by_key("Person", int(args["person2_id"]))
    if src is None or dst is None:
        return FlatBlock.from_dict(
            {"pathPersonIds": (DataType.STRING, []), "pathWeight": (DataType.FLOAT64, [])}
        )
    paths = _enumerate_shortest_paths(view, src, dst)
    pair_cache: dict[tuple[int, int], float] = {}

    def pair_weight(x: int, y: int) -> float:
        key = (x, y) if x <= y else (y, x)
        if key not in pair_cache:
            pair_cache[key] = _interaction_weight(view, key[0], key[1])
        return pair_cache[key]

    ids: list[str] = []
    weights: list[float] = []
    for path in paths:
        keys = [view.vertex_key("Person", row) for row in path]
        ids.append(",".join(str(k) for k in keys))
        weights.append(sum(pair_weight(path[i], path[i + 1]) for i in range(len(path) - 1)))
    order = sorted(range(len(paths)), key=lambda i: (-weights[i], ids[i]))
    return FlatBlock.from_dict(
        {
            "pathPersonIds": (DataType.STRING, [ids[i] for i in order]),
            "pathWeight": (DataType.FLOAT64, [weights[i] for i in order]),
        }
    )


@register_procedure("khop_neighborhood")
def khop_neighborhood(view: GraphReadView, args: dict[str, Any]) -> FlatBlock:
    """Utility procedure: rows of all persons within k KNOWS hops (excl. start)."""
    src = view.vertex_by_key("Person", int(args["person_id"]))
    k = int(args.get("hops", 2))
    if src is None:
        return FlatBlock.from_dict({"person": (DataType.INT64, [])})
    depths, _ = _bfs_levels(view, src, max_depth=k)
    rows = sorted(row for row, depth in depths.items() if 0 < depth <= k)
    return FlatBlock.from_dict(
        {"person": (DataType.INT64, np.asarray(rows, dtype=np.int64))}
    )
