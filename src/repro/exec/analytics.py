"""OLAP graph-analytics procedures (paper §2.2's OLAP workload class).

GES serves analytical workloads ("large-scale graph traversal for risk
management and pattern detection") alongside the interactive queries.
These stored procedures run vectorized over the CSR adjacency layout:

* ``pagerank`` — damped power iteration;
* ``connected_components`` — iterative label propagation (undirected view);
* ``triangle_count`` — per-vertex triangle counts via sorted-adjacency
  intersection;
* ``degree_distribution`` — degree histogram of one adjacency key.

All accept ``vertex_label`` / ``edge_label`` arguments so they run on any
schema, and are registered as stored procedures callable from plans.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.flatblock import FlatBlock
from ..errors import ExecutionError
from ..storage.catalog import AdjacencyKey, Direction
from ..storage.graph import GraphReadView
from ..types import DataType
from .procedures import register_procedure


def _csr(view: GraphReadView, vertex_label: str, edge_label: str):
    """(starts, lengths, targets base, n) of the OUT adjacency of one key."""
    key = AdjacencyKey(vertex_label, edge_label, vertex_label, Direction.OUT)
    adjacency = view.store.adjacency(key)
    if not adjacency.supports_segments:
        raise ExecutionError(
            f"analytics over {edge_label!r} requires a compacted adjacency "
            "(reload or snapshot-roundtrip the graph after updates)"
        )
    n = len(view.store.table(vertex_label))
    rows = np.arange(n, dtype=np.int64)
    base, starts, lengths = adjacency.meta_for(rows)
    return base, starts, lengths, n


def _gather_edges(base, starts, lengths) -> tuple[np.ndarray, np.ndarray]:
    """Parallel (src, dst) arrays from the CSR layout."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    src = np.repeat(np.arange(len(lengths), dtype=np.int64), lengths)
    offsets = np.zeros(len(lengths), dtype=np.int64)
    if len(lengths) > 1:
        np.cumsum(lengths[:-1], out=offsets[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, lengths)
    dst = base[np.repeat(starts, lengths) + within]
    return src, dst


@register_procedure("pagerank")
def pagerank(view: GraphReadView, args: dict[str, Any]) -> FlatBlock:
    """Damped PageRank over one edge label; returns (vertexRow, rank)."""
    vertex_label = args.get("vertex_label", "Person")
    edge_label = args.get("edge_label", "KNOWS")
    damping = float(args.get("damping", 0.85))
    iterations = int(args.get("iterations", 30))
    tolerance = float(args.get("tolerance", 1e-9))

    base, starts, lengths, n = _csr(view, vertex_label, edge_label)
    if n == 0:
        return FlatBlock.from_dict(
            {"vertex": (DataType.INT64, []), "rank": (DataType.FLOAT64, [])}
        )
    src, dst = _gather_edges(base, starts, lengths)
    out_degree = lengths.astype(np.float64)
    dangling = out_degree == 0

    rank = np.full(n, 1.0 / n)
    for _ in range(iterations):
        contribution = np.zeros(n)
        if len(src):
            np.add.at(contribution, dst, rank[src] / out_degree[src])
        dangling_mass = rank[dangling].sum() / n
        fresh = (1 - damping) / n + damping * (contribution + dangling_mass)
        if np.abs(fresh - rank).sum() < tolerance:
            rank = fresh
            break
        rank = fresh
    return FlatBlock.from_dict(
        {"vertex": (DataType.INT64, np.arange(n)), "rank": (DataType.FLOAT64, rank)}
    )


@register_procedure("connected_components")
def connected_components(view: GraphReadView, args: dict[str, Any]) -> FlatBlock:
    """Weakly connected components via label propagation.

    Returns (vertexRow, component) where the component id is the smallest
    vertex row it contains.
    """
    vertex_label = args.get("vertex_label", "Person")
    edge_label = args.get("edge_label", "KNOWS")
    base, starts, lengths, n = _csr(view, vertex_label, edge_label)
    src, dst = _gather_edges(base, starts, lengths)
    # Undirected view: propagate along both directions.
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])

    labels = np.arange(n, dtype=np.int64)
    while True:
        proposed = labels.copy()
        if len(all_src):
            np.minimum.at(proposed, all_dst, labels[all_src])
        # Pointer-jumping keeps convergence near-logarithmic.
        proposed = proposed[proposed]
        if np.array_equal(proposed, labels):
            break
        labels = proposed
    return FlatBlock.from_dict(
        {"vertex": (DataType.INT64, np.arange(n)), "component": (DataType.INT64, labels)}
    )


@register_procedure("triangle_count")
def triangle_count(view: GraphReadView, args: dict[str, Any]) -> FlatBlock:
    """Per-vertex triangle counts (assumes a symmetric edge label).

    Returns (vertexRow, triangles) plus the caller can sum/3 for the
    global count.
    """
    vertex_label = args.get("vertex_label", "Person")
    edge_label = args.get("edge_label", "KNOWS")
    base, starts, lengths, n = _csr(view, vertex_label, edge_label)

    neighbor_sets: list[np.ndarray] = [
        np.unique(base[starts[v] : starts[v] + lengths[v]]) for v in range(n)
    ]
    counts = np.zeros(n, dtype=np.int64)
    for v in range(n):
        mine = neighbor_sets[v]
        higher = mine[mine > v]
        for u in higher:
            common = np.intersect1d(mine, neighbor_sets[int(u)], assume_unique=True)
            shared = int((common > u).sum())
            counts[v] += shared
            counts[int(u)] += shared
            if shared:
                for w in common[common > u]:
                    counts[int(w)] += 1
    return FlatBlock.from_dict(
        {"vertex": (DataType.INT64, np.arange(n)), "triangles": (DataType.INT64, counts)}
    )


@register_procedure("degree_distribution")
def degree_distribution(view: GraphReadView, args: dict[str, Any]) -> FlatBlock:
    """Histogram of out-degrees: (degree, numVertices)."""
    vertex_label = args.get("vertex_label", "Person")
    edge_label = args.get("edge_label", "KNOWS")
    _, _, lengths, n = _csr(view, vertex_label, edge_label)
    if n == 0:
        return FlatBlock.from_dict(
            {"degree": (DataType.INT64, []), "numVertices": (DataType.INT64, [])}
        )
    histogram = np.bincount(lengths)
    degrees = np.flatnonzero(histogram)
    return FlatBlock.from_dict(
        {
            "degree": (DataType.INT64, degrees.astype(np.int64)),
            "numVertices": (DataType.INT64, histogram[degrees].astype(np.int64)),
        }
    )
