"""The flat executor — the GES baseline variant.

Every operator consumes and produces a fully materialized
:class:`~repro.core.flatblock.FlatBlock`: intermediate results are explicit
tuples, replicated on every Expand exactly as Figure 4 of the paper shows.
This is the architecture whose memory blow-up and data movement the
factorized executor eliminates.

The per-operator functions here are also reused by the factorized executor
once it has de-factored ("block-based execution continues until
completion", paper §4).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..core.flatblock import FlatBlock
from ..errors import ExecutionError
from ..plan.expressions import Expr
from ..plan.logical import (
    Aggregate,
    AggregateTopK,
    AggSpec,
    Distinct,
    Expand,
    Filter,
    FilteredNodeScan,
    GetProperty,
    Limit,
    LogicalOp,
    LogicalPlan,
    NodeByIdSeek,
    NodeByRows,
    NodeScan,
    OrderBy,
    ProcedureCall,
    Project,
    TopK,
    VertexExpand,
    resolve_labels,
)
from ..obs.clock import now
from ..storage.graph import GraphReadView
from ..storage.validity import pack_values
from ..types import DataType
from .base import BlockResolver, ExecStats, ExecutionContext, OpTimer, QueryResult, result_from_flat
from .expand_util import expand_batch
from .procedures import get_procedure
from .scan import filtered_scan


def execute_flat(
    plan: LogicalPlan,
    view: GraphReadView,
    params: Mapping[str, Any] | None = None,
    stats: ExecStats | None = None,
) -> QueryResult:
    """Run *plan* with flat (fully materialized) intermediate results."""
    block, ctx = execute_flat_block(plan, view, params, stats)
    return result_from_flat(block, plan.returns, ctx.stats)


def execute_flat_block(
    plan: LogicalPlan,
    view: GraphReadView,
    params: Mapping[str, Any] | None = None,
    stats: ExecStats | None = None,
) -> tuple[FlatBlock, ExecutionContext]:
    """Run *plan* and return the final block before the result boundary.

    The pooled scatter-gather path uses this entry point: workers execute a
    partition-local plan and ship the raw block (arrays + validity) back to
    the coordinator, which concatenates partials and keeps executing — so
    no rows are forced through the Python-tuple result boundary mid-plan.
    """
    ctx = ExecutionContext(view, params, stats)
    ctx.var_labels = resolve_labels(plan, view.schema)
    if ctx.tracing:
        ctx.stats.trace.begin("execute")
    started = now()
    block: FlatBlock | None = None
    try:
        for op in plan.ops:
            with OpTimer(ctx, op.op_name) as timer:
                previous = block
                block = dispatch_flat(block, op, ctx)
                # Piping tuples between operators keeps the consumed input and
                # the produced output resident at once (paper §3).
                timer.out_bytes = block.nbytes + (previous.nbytes if previous is not None else 0)
                if ctx.tracing:
                    timer.annotate(
                        rows_in=len(previous) if previous is not None else 0,
                        rows_out=len(block),
                    )
        assert block is not None
        ctx.stats.total_seconds += now() - started
    finally:
        if ctx.tracing:
            ctx.stats.trace.end(
                peak_bytes=ctx.stats.peak_intermediate_bytes, variant="flat"
            )
    return block, ctx


def dispatch_flat(block: FlatBlock | None, op: LogicalOp, ctx: ExecutionContext) -> FlatBlock:
    """Evaluate one logical operator over a flat block."""
    if isinstance(op, NodeByIdSeek):
        return _seek(op.var, op.label, op.key, ctx)
    if isinstance(op, NodeScan):
        out = FlatBlock()
        out.add_array(op.var, DataType.INT64, ctx.view.all_rows(op.label))
        return out
    if isinstance(op, NodeByRows):
        rows = np.asarray(ctx.params[op.rows_param], dtype=np.int64)
        out = FlatBlock()
        out.add_array(op.var, DataType.INT64, rows)
        return out
    if isinstance(op, FilteredNodeScan):
        rows, values, validity, dtype = filtered_scan(ctx.view, op, ctx.params)
        out = FlatBlock()
        out.add_array(op.var, DataType.INT64, rows)
        out.add_array(op.out, dtype, values, validity)
        return out
    if isinstance(op, VertexExpand):
        seeded = _seek(op.seek_var, op.seek_label, op.seek_key, ctx)
        ctx.var_labels.setdefault(op.seek_var, op.seek_label)
        return _expand(seeded, op.expand, ctx)
    if isinstance(op, ProcedureCall):
        args = {name: expr.eval_row({}, ctx.params) for name, expr in op.args.items()}
        return get_procedure(op.name)(ctx.view, args)
    if block is None:
        raise ExecutionError(f"{op.op_name} cannot start a pipeline")
    if isinstance(op, Expand):
        return _expand(block, op, ctx)
    if isinstance(op, GetProperty):
        return _get_property(block, op, ctx)
    if isinstance(op, Filter):
        mask = np.asarray(
            op.expr.eval_block(BlockResolver(block), ctx.params), dtype=bool
        )
        return block.filter(mask)
    if isinstance(op, Project):
        return project_block(block, op.items, ctx)
    if isinstance(op, Aggregate):
        return flat_aggregate(block, op.group_by, op.aggs, ctx)
    if isinstance(op, OrderBy):
        return block.sort(op.keys)
    if isinstance(op, Limit):
        return block.limit(op.n)
    if isinstance(op, Distinct):
        cols = op.cols if op.cols is not None else block.schema
        return block.distinct(cols).select(cols)
    if isinstance(op, TopK):
        return block.sort(op.keys).limit(op.n)
    if isinstance(op, AggregateTopK):
        out = flat_aggregate(block, op.group_by, op.aggs, ctx)
        if op.project_items is not None:
            out = project_block(out, op.project_items, ctx)
        return out.sort(op.keys).limit(op.n)
    raise ExecutionError(f"flat executor cannot handle {op.op_name}")


def _seek(var: str, label: str, key: Expr, ctx: ExecutionContext) -> FlatBlock:
    key_value = key.eval_row({}, ctx.params)
    row = ctx.view.vertex_by_key(label, int(key_value))
    out = FlatBlock()
    rows = np.asarray([row], dtype=np.int64) if row is not None else np.empty(0, np.int64)
    out.add_array(var, DataType.INT64, rows)
    return out


def _expand(block: FlatBlock, op: Expand, ctx: ExecutionContext) -> FlatBlock:
    from_label = ctx.label_of(op.from_var)
    to_label = op.to_label or ctx.var_labels.get(op.to_var)
    if to_label is None:
        raise ExecutionError(f"unresolved destination label for {op.to_var!r}")
    if op.is_multi_hop:
        return _expand_multi_hop(block, op, ctx, from_label, to_label)
    from_rows = block.array(op.from_var)
    batch = expand_batch(
        ctx.view, op, from_rows, from_label, to_label, ctx.params,
        deadline=ctx.deadline, from_validity=block.validity(op.from_var),
    )

    out = FlatBlock()
    for name in block.schema:
        # Flat execution replicates every existing column per neighbor —
        # exactly the redundancy of Figure 4.
        valid = block.validity(name)
        out.add_array(
            name,
            block.dtype(name),
            np.repeat(block.array(name), batch.counts),
            None if valid is None else np.repeat(valid, batch.counts),
        )
    out.add_array(op.to_var, DataType.INT64, batch.neighbors, batch.validity)
    for name, (dtype, values, valid) in batch.extra.items():
        out.add_array(name, dtype, values, valid)
    return out


def _expand_multi_hop(
    block: FlatBlock, op: Expand, ctx: ExecutionContext, from_label: str, to_label: str
) -> FlatBlock:
    """Variable-length expansion, the flat way (paper Figure 4).

    A flat executor has no set representation, so ``KNOWS*1..3`` runs as
    repeated single-hop expansions — every hop replicates the full input
    tuple per neighbor — followed by a distinct pass that keeps each
    reached vertex at its minimum depth.  This hop-by-hop materialization
    is exactly the two-hop blow-up of Figure 4; the factorized executor's
    per-source BFS is what eliminates it.
    """
    if from_label != to_label:
        raise ExecutionError("multi-hop Expand requires matching endpoint labels")
    lineage = FlatBlock()
    for name in block.schema:
        lineage.add_array(name, block.dtype(name), block.array(name), block.validity(name))
    lineage.add_array("__lineage", DataType.INT64, np.arange(len(block), dtype=np.int64))

    current = lineage
    current_var = op.from_var
    hop_results: list[tuple[np.ndarray, np.ndarray]] = []  # (lineage, vertex)
    for hop in range(1, op.max_hops + 1):
        hop_var = f"__hop{hop}"
        step = Expand(current_var, hop_var, op.edge_label, op.direction, to_label=to_label)
        ctx.var_labels[hop_var] = to_label
        previous = current
        current = _expand(current, step, ctx)
        # Each hop's fully replicated tuple block is a real intermediate.
        ctx.stats.note_bytes(previous.nbytes + current.nbytes)
        hop_results.append((current.array("__lineage"), current.array(hop_var)))
        current_var = hop_var

    starts = block.array(op.from_var)
    first_hop: dict[tuple[int, int], int] = {}
    for hop, (lineages, vertices) in enumerate(hop_results, start=1):
        for lin, vertex in zip(lineages.tolist(), vertices.tolist()):
            key = (lin, vertex)
            if key not in first_hop:
                first_hop[key] = hop

    kept = sorted(
        (lin, vertex)
        for (lin, vertex), hop in first_hop.items()
        if hop >= op.min_hops and vertex != int(starts[lin])
    )
    keep_lineage = [lin for lin, _ in kept]
    keep_vertex = [vertex for _, vertex in kept]

    out = block.take(np.asarray(keep_lineage, dtype=np.int64))
    result = FlatBlock()
    for name in out.schema:
        result.add_array(name, out.dtype(name), out.array(name), out.validity(name))
    result.add_array(op.to_var, DataType.INT64, np.asarray(keep_vertex, dtype=np.int64))
    return result


def _get_property(block: FlatBlock, op: GetProperty, ctx: ExecutionContext) -> FlatBlock:
    label = ctx.label_of(op.var)
    dtype = ctx.view.schema.vertex_label(label).property(op.prop).dtype
    rows = block.array(op.var)
    values, validity = gather_with_nulls(
        ctx.view, label, op.prop, dtype, rows, block.validity(op.var)
    )
    out = FlatBlock()
    for name in block.schema:
        # The flat pipeline materializes its output tuples: every column is
        # rewritten, not shared — the data movement the paper measures.
        valid = block.validity(name)
        out.add_array(
            name,
            block.dtype(name),
            block.array(name).copy(),
            None if valid is None else valid.copy(),
        )
    out.add_array(op.out, dtype, values, validity)
    return out


def gather_with_nulls(
    view: GraphReadView,
    label: str,
    prop: str,
    dtype: DataType,
    rows: np.ndarray,
    rows_validity: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Vectorized property gather tolerating NULL row ids (optional matches).

    Returns (values, validity): a NULL source row — a cleared bit in
    *rows_validity* — yields a NULL output; real rows inherit the stored
    column's validity.
    """
    if len(rows) == 0:
        return np.empty(0, dtype=dtype.numpy_dtype), None
    if rows_validity is None:
        return view.gather_properties_with_validity(label, prop, rows)
    values = np.full(len(rows), dtype.fill_value(), dtype=dtype.numpy_dtype)
    validity = rows_validity.copy()
    if rows_validity.any():
        gathered, gathered_valid = view.gather_properties_with_validity(
            label, prop, rows[rows_validity]
        )
        values[rows_validity] = gathered
        if gathered_valid is not None:
            validity[np.flatnonzero(rows_validity)] = gathered_valid
    return values, validity


def project_block(
    block: FlatBlock, items: list[tuple[str, Expr]], ctx: ExecutionContext
) -> FlatBlock:
    """Evaluate projection items into a fresh materialized block."""
    resolver = BlockResolver(block)
    out = FlatBlock()
    for name, expr in items:
        values = expr.eval_block(resolver, ctx.params)
        nulls = expr.null_block(resolver, ctx.params)
        dtype = expr.infer_dtype(block.dtype, ctx.params)
        if values is None:
            values = dtype.fill_value()
        if np.isscalar(values) or (isinstance(values, np.ndarray) and values.ndim == 0):
            values = np.full(len(block), values, dtype=dtype.numpy_dtype)
        validity = None
        if nulls is not None:
            if np.isscalar(nulls) or (isinstance(nulls, np.ndarray) and nulls.ndim == 0):
                nulls = np.full(len(block), bool(nulls))
            validity = ~np.asarray(nulls, dtype=bool)
        out.add_array(name, dtype, np.asarray(values, dtype=dtype.numpy_dtype), validity)
    return out


def flat_aggregate(
    block: FlatBlock,
    group_by: list[str],
    aggs: list[AggSpec],
    ctx: ExecutionContext,
) -> FlatBlock:
    """Hash aggregation over a materialized block (the block-based path)."""
    if group_by:
        groups = block.group_indices(group_by)
        keys = list(groups.keys())
        index_sets = [groups[k] for k in keys]
    else:
        keys = [()]
        index_sets = [np.arange(len(block), dtype=np.int64)]

    out = FlatBlock()
    for position, name in enumerate(group_by):
        dtype = block.dtype(name)
        data, validity = pack_values([k[position] for k in keys], dtype)
        out.add_array(name, dtype, data, validity)
    for agg in aggs:
        dtype = _agg_dtype(agg, block)
        data, validity = pack_values(
            [_eval_agg(agg, block, idx) for idx in index_sets], dtype
        )
        out.add_array(agg.out, dtype, data, validity)
    return out


def _agg_dtype(agg: AggSpec, block: FlatBlock) -> DataType:
    if agg.fn in ("count", "count_distinct"):
        return DataType.INT64
    if agg.fn == "avg":
        return DataType.FLOAT64
    assert agg.arg is not None
    return block.dtype(agg.arg)


def _eval_agg(agg: AggSpec, block: FlatBlock, indices: np.ndarray) -> Any:
    if agg.fn == "count":
        if agg.arg is None:
            return len(indices)
        values = block.array(agg.arg)[indices]
        return int(_non_null_mask(values, _arg_validity(block, agg.arg, indices)).sum())
    assert agg.arg is not None
    values = block.array(agg.arg)[indices]
    mask = _non_null_mask(values, _arg_validity(block, agg.arg, indices))
    values = values[mask]
    if agg.fn == "count_distinct":
        return len(set(values.tolist()))
    if len(values) == 0:
        # Empty min/max/avg is NULL (a cleared validity bit downstream).
        return 0 if agg.fn == "sum" else None
    if agg.fn == "sum":
        return values.sum()
    if agg.fn == "min":
        return values.min()
    if agg.fn == "max":
        return values.max()
    if agg.fn == "avg":
        return float(values.mean())
    raise ExecutionError(f"unknown aggregate {agg.fn!r}")


def _arg_validity(block: FlatBlock, name: str, indices: np.ndarray) -> np.ndarray | None:
    validity = block.validity(name)
    return None if validity is None else validity[indices]


def _non_null_mask(
    values: np.ndarray, validity: np.ndarray | None = None
) -> np.ndarray:
    """Aggregation input mask: validity bits first, value-level NULLs second.

    Object None and float NaN still read as NULL for columns produced
    without a mask (e.g. raw projection outputs); integers carry no
    value-level NULL — the sentinel convention is gone.
    """
    if values.dtype == object:
        mask = np.fromiter((v is not None for v in values), dtype=bool, count=len(values))
    elif values.dtype.kind == "f":
        mask = ~np.isnan(values)
    else:
        mask = np.ones(len(values), dtype=bool)
    if validity is not None:
        mask &= validity
    return mask
