"""The factorized executor — GES_f, and the operator host for GES_f*.

Intermediate results live in an f-Tree for as long as possible:

* Expand appends a child node whose neighbor column is, whenever the
  storage layout allows it, a *lazy* pointer-based column (paper §5);
* Filter flips selection bits on the node owning the filtered attributes;
* GetProperty appends a property column to the owning node;
* Aggregates whose attributes are confined to one node run directly on the
  factorization using index-vector counting (no enumeration at all);
* everything else *de-factors* into a flat block and continues with the
  block-based operators from :mod:`repro.exec.flat` — the paper's
  "ultimate solution".

The fused operators produced by the optimizer (TopK, AggregateTopK,
VertexExpand, Expand with pushed-down filters) are also implemented here;
they consume the constant-delay enumeration streamingly instead of
materializing a flat block first.
"""

from __future__ import annotations

import heapq
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.column import Column, column_validity
from ..core.defactor import materialize, slot_count
from ..obs.clock import now
from ..core.fblock import FBlock
from ..core.flatblock import FlatBlock, sort_key_array
from ..core.ftree import FTree, FTreeNode, IndexVector
from ..core.lazy import LazyNeighborColumn
from ..errors import ExecutionError
from ..plan.expressions import Col, Expr
from ..plan.logical import (
    Aggregate,
    AggregateTopK,
    AggSpec,
    Distinct,
    Expand,
    Filter,
    FilteredNodeScan,
    GetProperty,
    Limit,
    LogicalOp,
    LogicalPlan,
    NodeByIdSeek,
    NodeByRows,
    NodeScan,
    OrderBy,
    ProcedureCall,
    Project,
    TopK,
    VertexExpand,
    resolve_labels,
)
from ..storage.graph import GraphReadView
from ..storage.validity import pack_values
from ..types import DataType, is_null
from .base import ExecStats, ExecutionContext, OpTimer, QueryResult, result_from_flat
from .expand_util import expand_batch, resolve_expand_keys
from .scan import filtered_scan
from .flat import (
    _non_null_mask,
    dispatch_flat,
    flat_aggregate,
    gather_with_nulls,
    project_block,
)
from .procedures import get_procedure


class PipelineState:
    """Current intermediate result: an f-Tree until something de-factors it."""

    def __init__(self) -> None:
        self.tree: FTree | None = None
        self.flat: FlatBlock | None = None
        self.projection: list[str] | None = None
        # Deferred node-local Order-By (paper: "append a special column to
        # indicate the orders"): (node, keys), consumed by a following
        # Limit via ordered enumeration, or flushed by de-factoring.
        self.pending_order: tuple[FTreeNode, list[tuple[str, bool]]] | None = None

    @property
    def is_factorized(self) -> bool:
        return self.tree is not None

    @property
    def nbytes(self) -> int:
        if self.tree is not None:
            return self.tree.nbytes
        if self.flat is not None:
            return self.flat.nbytes
        return 0

    def output_attrs(self) -> list[str]:
        if self.projection is not None:
            return list(self.projection)
        if self.tree is not None:
            return self.tree.schema
        assert self.flat is not None
        return self.flat.schema


class FBlockResolver:
    """Column resolver over one f-Block (node-local filter/projection)."""

    def __init__(self, block: FBlock) -> None:
        self._block = block

    def resolve(self, name: str) -> np.ndarray:
        return self._block.column(name).values()

    def dtype_of(self, name: str) -> DataType:
        return self._block.column(name).dtype

    def validity_of(self, name: str) -> np.ndarray | None:
        return column_validity(self._block.column(name))


def execute_factorized(
    plan: LogicalPlan,
    view: GraphReadView,
    params: Mapping[str, Any] | None = None,
    stats: ExecStats | None = None,
) -> QueryResult:
    """Run *plan* keeping intermediate results factorized when possible."""
    ctx = ExecutionContext(view, params, stats)
    ctx.var_labels = resolve_labels(plan, view.schema)
    if ctx.tracing:
        ctx.stats.trace.begin("execute")
    started = now()
    state = PipelineState()
    try:
        for op in plan.ops:
            with OpTimer(ctx, op.op_name) as timer:
                dispatch_factorized(state, op, ctx)
                timer.out_bytes = state.nbytes
                if ctx.tracing:
                    _annotate_state(timer, state)
        result = _finalize(state, plan, ctx)
        ctx.stats.total_seconds += now() - started
    finally:
        if ctx.tracing:
            ctx.stats.trace.end(
                peak_bytes=ctx.stats.peak_intermediate_bytes,
                variant="factorized",
            )
    return result


def _annotate_state(timer: OpTimer, state: PipelineState) -> None:
    """Span attributes of the operator's output (traced queries only)."""
    if state.tree is not None:
        timer.annotate(
            factorized=True,
            fblocks=sum(1 for _ in state.tree.nodes()),
            slots=slot_count(state.tree),
        )
    elif state.flat is not None:
        timer.annotate(factorized=False, rows_out=len(state.flat))


def _finalize(state: PipelineState, plan: LogicalPlan, ctx: ExecutionContext) -> QueryResult:
    if state.pending_order is not None:
        defactor(state, ctx)  # applies the deferred sort
    if state.tree is not None:
        attrs = plan.returns or state.output_attrs()
        block = materialize(state.tree, attrs)
        ctx.stats.note_bytes(state.tree.nbytes)
        ctx.stats.note_compression(len(block), slot_count(state.tree))
    else:
        assert state.flat is not None
        block = state.flat
        if state.projection is not None:
            block = block.select(state.projection)
    returns = plan.returns or state.projection
    return result_from_flat(block, returns, ctx.stats)


def defactor(state: PipelineState, ctx: ExecutionContext) -> FlatBlock:
    """Fall back to the flat representation (counted in the stats)."""
    if state.flat is not None:
        return state.flat
    assert state.tree is not None
    tree_bytes = state.tree.nbytes
    attrs = state.projection if state.projection is not None else state.tree.schema
    pending = state.pending_order
    state.pending_order = None
    if pending is not None:
        for name, _ in pending[1]:
            if name not in attrs:
                attrs = list(attrs) + [name]
    block = materialize(state.tree, attrs)
    if pending is not None:
        block = block.sort(pending[1])
    ctx.stats.note_defactor()
    # De-factoring holds the f-Tree and the produced flat block at once.
    ctx.stats.note_bytes(tree_bytes + block.nbytes)
    ctx.stats.note_compression(len(block), slot_count(state.tree))
    state.tree = None
    state.flat = block
    state.projection = None
    return block


def dispatch_factorized(state: PipelineState, op: LogicalOp, ctx: ExecutionContext) -> None:
    """Evaluate one operator, updating *state* in place."""
    # Source operators.
    if isinstance(op, NodeByIdSeek):
        _start(state, op.var, _seek_rows(op.label, op.key, ctx))
        return
    if isinstance(op, NodeScan):
        _start(state, op.var, ctx.view.all_rows(op.label))
        return
    if isinstance(op, NodeByRows):
        _start(state, op.var, np.asarray(ctx.params[op.rows_param], dtype=np.int64))
        return
    if isinstance(op, FilteredNodeScan):
        rows, values, validity, dtype = filtered_scan(ctx.view, op, ctx.params)
        _start(state, op.var, rows)
        state.tree.add_column(state.tree.root, Column(op.out, dtype, values, validity))
        return
    if isinstance(op, ProcedureCall):
        args = {name: expr.eval_row({}, ctx.params) for name, expr in op.args.items()}
        state.tree = None
        state.flat = get_procedure(op.name)(ctx.view, args)
        state.projection = None
        state.pending_order = None
        return
    if isinstance(op, VertexExpand):
        _start(state, op.seek_var, _seek_rows(op.seek_label, op.seek_key, ctx))
        ctx.var_labels.setdefault(op.seek_var, op.seek_label)
        dispatch_factorized(state, op.expand, ctx)
        return

    # Once flat, stay block-based (paper: "continues until completion").
    if state.flat is not None:
        state.flat = dispatch_flat(state.flat, op, ctx)
        if isinstance(op, Project):
            state.projection = [name for name, _ in op.items]
        elif isinstance(op, (Aggregate, AggregateTopK, Distinct)):
            state.projection = None
        return

    assert state.tree is not None
    if state.pending_order is not None:
        if isinstance(op, Limit):
            _ordered_limit(state, op.n, ctx)
            return
        # Any other operator forces the deferred sort to materialize.
        state.flat = defactor(state, ctx)
        dispatch_factorized(state, op, ctx)
        return
    if isinstance(op, Expand):
        _factorized_expand(state, op, ctx)
    elif isinstance(op, GetProperty):
        _factorized_get_property(state.tree, op, ctx)
    elif isinstance(op, Filter):
        _factorized_filter(state, op, ctx)
    elif isinstance(op, Project):
        _factorized_project(state, op, ctx)
    elif isinstance(op, Aggregate):
        # Aggregation needs global tuple state: de-factor and continue
        # block-based (paper §4.3; the factorized fast path is what the
        # AggregateProjectTop *fusion* adds in GES_f*).
        block = defactor(state, ctx)
        state.flat = flat_aggregate(block, op.group_by, op.aggs, ctx)
        state.projection = None
    elif isinstance(op, OrderBy):
        _factorized_order_by(state, op, ctx)
    elif isinstance(op, Limit):
        _factorized_limit(state, op.n, ctx)
    elif isinstance(op, Distinct):
        block = defactor(state, ctx)
        cols = op.cols if op.cols is not None else block.schema
        state.flat = block.distinct(cols).select(cols)
        state.projection = None
    elif isinstance(op, TopK):
        _fused_top_k(state, op, ctx)
    elif isinstance(op, AggregateTopK):
        _fused_aggregate_top_k(state, op, ctx)
    else:
        raise ExecutionError(f"factorized executor cannot handle {op.op_name}")


# -- sources -----------------------------------------------------------------


def _seek_rows(label: str, key: Expr, ctx: ExecutionContext) -> np.ndarray:
    value = key.eval_row({}, ctx.params)
    row = ctx.view.vertex_by_key(label, int(value))
    if row is None:
        return np.empty(0, dtype=np.int64)
    return np.asarray([row], dtype=np.int64)


def _start(state: PipelineState, var: str, rows: np.ndarray) -> None:
    block = FBlock([Column(var, DataType.INT64, rows)])
    state.tree = FTree.single(var, block)
    state.flat = None
    state.projection = None
    state.pending_order = None


# -- expand --------------------------------------------------------------------


def _factorized_expand(state: PipelineState, op: Expand, ctx: ExecutionContext) -> None:
    tree = state.tree
    assert tree is not None
    if not tree.has_attr(op.from_var):
        raise ExecutionError(f"Expand from unknown attribute {op.from_var!r}")
    node = tree.node_of(op.from_var)
    from_label = ctx.label_of(op.from_var)
    to_label = op.to_label or ctx.var_labels.get(op.to_var)
    if to_label is None:
        raise ExecutionError(f"unresolved destination label for {op.to_var!r}")

    keys = resolve_expand_keys(ctx.view, op, from_label)
    pointer_join_ok = (
        len(keys) == 1
        and not op.is_multi_hop
        and not op.optional
        and not op.edge_props
        and not op.neighbor_props
        and op.neighbor_filter is None
        and ctx.view.store.adjacency(keys[0]).supports_segments
        and ctx.view.version is None
    )
    from_column = node.block.column(op.from_var)
    from_values = from_column.values()
    from_valid = column_validity(from_column)

    if pointer_join_ok:
        key = keys[0]
        adjacency = ctx.view.store.adjacency(key)
        base, starts, lengths = adjacency.meta_for(from_values)
        # Entries pruned by the selection vector (or NULL sources from an
        # earlier optional match) never expand.
        lengths = np.where(node.selection, lengths, 0)
        if from_valid is not None:
            lengths = np.where(from_valid, lengths, 0)
        child_block = FBlock([LazyNeighborColumn(op.to_var, base, starts, lengths)])
        tree.add_child(node, op.to_var, child_block, IndexVector.from_lengths(lengths))
        return

    # General path: sources pruned by the selection vector (and NULL
    # sources) are skipped via the validity mask — no sentinel writes.
    sources_valid = (
        node.selection if from_valid is None else node.selection & from_valid
    )
    batch = expand_batch(
        ctx.view, op, from_values, from_label, to_label, ctx.params,
        deadline=ctx.deadline,
        from_validity=None if bool(sources_valid.all()) else sources_valid,
    )
    child_block = FBlock(
        [Column(op.to_var, DataType.INT64, batch.neighbors, batch.validity)]
    )
    for name, (dtype, values, valid) in batch.extra.items():
        child_block.add_column(Column(name, dtype, values, valid))
    tree.add_child(node, op.to_var, child_block, IndexVector.from_lengths(batch.counts))


# -- projection / filter -----------------------------------------------------------


def _factorized_get_property(tree: FTree, op: GetProperty, ctx: ExecutionContext) -> None:
    node = tree.node_of(op.var)
    label = ctx.label_of(op.var)
    dtype = ctx.view.schema.vertex_label(label).property(op.prop).dtype
    column = node.block.column(op.var)
    rows = column.values()
    row_valid = column_validity(column)
    if node.selection.all() and row_valid is None:
        values, validity = gather_with_nulls(ctx.view, label, op.prop, dtype, rows)
    else:
        # "Factor out useless values": only selection-valid, non-NULL
        # entries are fetched; the rest stay NULL via cleared validity bits
        # over the dtype's inert fill.
        values = np.full(len(rows), dtype.fill_value(), dtype=dtype.numpy_dtype)
        validity = np.zeros(len(rows), dtype=bool)
        live = node.selection if row_valid is None else node.selection & row_valid
        live_idx = np.flatnonzero(live)
        if len(live_idx):
            gathered, gathered_valid = gather_with_nulls(
                ctx.view, label, op.prop, dtype, rows[live_idx]
            )
            values[live_idx] = gathered
            validity[live_idx] = True if gathered_valid is None else gathered_valid
    tree.add_column(node, Column(op.out, dtype, values, validity))


def _factorized_filter(state: PipelineState, op: Filter, ctx: ExecutionContext) -> None:
    tree = state.tree
    assert tree is not None
    cols = op.expr.columns()
    nodes = {id(tree.node_of(c)) for c in cols if tree.has_attr(c)}
    if len(nodes) == 1 and all(tree.has_attr(c) for c in cols):
        node = tree.node_of(next(iter(cols)))
        mask = np.asarray(
            op.expr.eval_block(FBlockResolver(node.block), ctx.params), dtype=bool
        )
        node.and_selection(mask)
        return
    # Attributes span nodes: de-factor and filter block-based.
    block = defactor(state, ctx)
    state.flat = dispatch_flat(block, op, ctx)


def _factorized_project(state: PipelineState, op: Project, ctx: ExecutionContext) -> None:
    tree = state.tree
    assert tree is not None
    for name, expr in op.items:
        if isinstance(expr, Col) and expr.name == name and tree.has_attr(name):
            continue  # pass-through column, nothing to compute
        cols = expr.columns()
        nodes = {id(tree.node_of(c)) for c in cols if tree.has_attr(c)}
        if cols and (len(nodes) != 1 or not all(tree.has_attr(c) for c in cols)):
            # Computed expression spans nodes: fall back for the whole op.
            block = defactor(state, ctx)
            state.flat = project_block(block, op.items, ctx)
            state.projection = [n for n, _ in op.items]
            return
        node = tree.node_of(next(iter(cols))) if cols else tree.root
        resolver = FBlockResolver(node.block)
        values = expr.eval_block(resolver, ctx.params)
        nulls = expr.null_block(resolver, ctx.params)
        dtype = expr.infer_dtype(resolver.dtype_of, ctx.params)
        if values is None:
            values = dtype.fill_value()
        if np.isscalar(values) or (isinstance(values, np.ndarray) and values.ndim == 0):
            values = np.full(len(node.block), values, dtype=dtype.numpy_dtype)
        validity = None
        if nulls is not None:
            if np.isscalar(nulls) or (isinstance(nulls, np.ndarray) and nulls.ndim == 0):
                nulls = np.full(len(node.block), bool(nulls))
            validity = ~np.asarray(nulls, dtype=bool)
        tree.add_column(
            node,
            Column(name, dtype, np.asarray(values, dtype=dtype.numpy_dtype), validity),
        )
    state.projection = [name for name, _ in op.items]


# -- factorized aggregation (direct computation on the f-Tree) ---------------------


def _subtree_counts_all(tree: FTree) -> dict[int, np.ndarray]:
    counts: dict[int, np.ndarray] = {}

    def compute(node: FTreeNode) -> np.ndarray:
        result = node.selection.astype(np.int64)
        for child, index_vector in node.children:
            child_counts = compute(child)
            prefix = np.zeros(len(child_counts) + 1, dtype=np.int64)
            np.cumsum(child_counts, out=prefix[1:])
            result *= prefix[index_vector.ends] - prefix[index_vector.starts]
        counts[id(node)] = result
        return result

    compute(tree.root)
    return counts


def tuples_through(tree: FTree, target: FTreeNode) -> np.ndarray:
    """Per-entry count of *whole-tree* valid tuples passing through each
    entry of *target* — the multiplicity weights for factorized aggregation.

    Computed with one bottom-up pass (subtree counts) and one top-down pass
    (context counts): context(v)[j] sums, over parent entries whose range
    covers j, the parent's context times the range-counts of all sibling
    subtrees.  Both passes are NumPy prefix-sum kernels.
    """
    counts = _subtree_counts_all(tree)

    def context(node: FTreeNode) -> np.ndarray:
        if node.parent is None:
            return np.ones(len(node.block), dtype=np.int64)
        parent = node.parent
        index_vector = parent.child_edge(node)
        contrib = context(parent) * parent.selection.astype(np.int64)
        for sibling, sibling_iv in parent.children:
            if sibling is node:
                continue
            sibling_counts = counts[id(sibling)]
            prefix = np.zeros(len(sibling_counts) + 1, dtype=np.int64)
            np.cumsum(sibling_counts, out=prefix[1:])
            contrib = contrib * (prefix[sibling_iv.ends] - prefix[sibling_iv.starts])
        # Scatter each parent range onto the child entries it covers.
        delta = np.zeros(len(node.block) + 1, dtype=np.int64)
        np.add.at(delta, index_vector.starts, contrib)
        np.add.at(delta, index_vector.ends, -contrib)
        return np.cumsum(delta[:-1])

    return context(target) * counts[id(target)]


def _fast_path_node(
    tree: FTree, group_by: Sequence[str], aggs: Sequence[AggSpec]
) -> FTreeNode | None:
    """The single node all aggregation attributes live in, or None."""
    involved = list(group_by) + [a.arg for a in aggs if a.arg is not None]
    if not involved:
        return tree.root
    if not all(tree.has_attr(c) for c in involved):
        return None
    nodes = {id(tree.node_of(c)): tree.node_of(c) for c in involved}
    if len(nodes) != 1:
        return None
    return next(iter(nodes.values()))


def aggregate_on_node(
    tree: FTree, node: FTreeNode, group_by: Sequence[str], aggs: Sequence[AggSpec]
) -> FlatBlock:
    """Direct aggregation over one node using tuple-multiplicity weights.

    The group table is built from the node's (compact) entries; aggregate
    values come from NumPy segment kernels (bincount / minimum.at /
    maximum.at) over the multiplicity weights — no tuple is enumerated.
    """
    weights = tuples_through(tree, node)
    valid = np.flatnonzero(weights > 0)
    valid_weights = weights[valid].astype(np.float64)

    # Dense group ids for the valid entries (NULL keys group as None,
    # matching the flat executor's to_pylist-based hashing).
    if group_by:
        key_lists = [
            _entry_pylist(node.block.column(c), valid) for c in group_by
        ]
        group_of: dict[tuple[Any, ...], int] = {}
        group_idx = np.empty(len(valid), dtype=np.int64)
        for i, key in enumerate(zip(*key_lists) if key_lists else ()):
            group_idx[i] = group_of.setdefault(key, len(group_of))
        keys = list(group_of.keys())
    else:
        group_idx = np.zeros(len(valid), dtype=np.int64)
        keys = [()]
    # With grouping, an empty input produces zero groups; a global
    # aggregate always produces exactly one row.
    num_groups = len(keys)

    out = FlatBlock()
    for position, name in enumerate(group_by):
        column = node.block.column(name)
        data, key_valid = pack_values([k[position] for k in keys], column.dtype)
        out.add_array(name, column.dtype, data, key_valid)

    for agg in aggs:
        dtype = _weighted_agg_dtype(agg, node)
        if agg.fn == "count" and agg.arg is None:
            values = np.bincount(group_idx, weights=valid_weights, minlength=num_groups)
            out.add_array(agg.out, dtype, values.astype(np.int64))
            continue
        assert agg.arg is not None
        arg_column = node.block.column(agg.arg)
        arg = arg_column.values()[valid]
        arg_validity = column_validity(arg_column)
        # NULL entries carry zero weight, matching the flat executor's
        # per-tuple mask (count/sum/min/max/avg all skip NULLs).
        non_null = _non_null_mask(
            arg, None if arg_validity is None else arg_validity[valid]
        )
        weights = valid_weights * non_null
        if agg.fn == "count":
            counts = np.bincount(group_idx, weights=weights, minlength=num_groups)
            out.add_array(agg.out, dtype, counts.astype(np.int64))
        elif agg.fn == "sum":
            sums = np.bincount(
                group_idx,
                weights=np.where(non_null, arg.astype(np.float64), 0.0) * weights,
                minlength=num_groups,
            )
            out.add_array(agg.out, dtype, sums.astype(dtype.numpy_dtype))
        elif agg.fn == "avg":
            sums = np.bincount(
                group_idx,
                weights=np.where(non_null, arg.astype(np.float64), 0.0) * weights,
                minlength=num_groups,
            )
            counts = np.bincount(group_idx, weights=weights, minlength=num_groups)
            with np.errstate(invalid="ignore", divide="ignore"):
                means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
            empty = counts == 0
            out.add_array(agg.out, dtype, means, ~empty if empty.any() else None)
        elif agg.fn in ("min", "max"):
            if arg.dtype == object:
                extremes: list[Any] = [None] * num_groups
                seen_any = [False] * num_groups
                better = (lambda a, b: a < b) if agg.fn == "min" else (lambda a, b: a > b)
                for g, v, ok in zip(group_idx.tolist(), arg.tolist(), non_null.tolist()):
                    if ok and (not seen_any[g] or better(v, extremes[g])):
                        extremes[g] = v
                        seen_any[g] = True
                data, ex_valid = pack_values(extremes, dtype)
                out.add_array(agg.out, dtype, data, ex_valid)
            else:
                fill = (
                    np.finfo(arg.dtype).max if arg.dtype.kind == "f"
                    else np.iinfo(np.int64).max
                )
                if agg.fn == "max":
                    fill = -fill if arg.dtype.kind == "f" else np.iinfo(np.int64).min
                extremes = np.full(num_groups, fill, dtype=arg.dtype)
                ufunc = np.minimum if agg.fn == "min" else np.maximum
                ufunc.at(extremes, group_idx[non_null], arg[non_null])
                seen = np.bincount(
                    group_idx, weights=non_null.astype(np.float64), minlength=num_groups
                )
                # Empty (all-NULL) groups yield NULL via validity over the
                # dtype's inert fill.
                empty = seen == 0
                extremes = np.where(empty, dtype.fill_value(), extremes)
                out.add_array(
                    agg.out,
                    dtype,
                    extremes.astype(dtype.numpy_dtype),
                    ~empty if empty.any() else None,
                )
        elif agg.fn == "count_distinct":
            seen_sets: list[set[Any]] = [set() for _ in range(num_groups)]
            for g, v, ok in zip(group_idx.tolist(), arg.tolist(), non_null.tolist()):
                if ok:
                    seen_sets[g].add(v)
            out.add_array(
                agg.out, dtype, np.asarray([len(s) for s in seen_sets], dtype=np.int64)
            )
        else:
            raise ExecutionError(f"unknown aggregate {agg.fn!r}")
    return out


def _entry_pylist(column: Column, idx: np.ndarray) -> list[Any]:
    """Entry values at *idx* as Python objects, NULLs as None."""
    values = column.values()[idx].tolist()
    validity = column_validity(column)
    if validity is not None:
        mask = validity[idx]
        values = [v if ok else None for v, ok in zip(values, mask)]
    return values


def _weighted_agg_dtype(agg: AggSpec, node: FTreeNode) -> DataType:
    if agg.fn in ("count", "count_distinct"):
        return DataType.INT64
    if agg.fn == "avg":
        return DataType.FLOAT64
    assert agg.arg is not None
    return node.block.column(agg.arg).dtype


# -- order-by / limit / fused top-k ------------------------------------------------


def _factorized_order_by(state: PipelineState, op: OrderBy, ctx: ExecutionContext) -> None:
    """Node-local sort keys: defer as an order over one node's entries
    (the paper's "special column indicating the orders"); keys spanning
    nodes de-factor immediately."""
    tree = state.tree
    assert tree is not None
    names = [name for name, _ in op.keys]
    if all(tree.has_attr(n) for n in names):
        nodes = {id(tree.node_of(n)) for n in names}
        if len(nodes) == 1:
            state.pending_order = (tree.node_of(names[0]), list(op.keys))
            return
    state.pending_order = None
    block = defactor(state, ctx)
    state.flat = block.sort(op.keys)


def _entry_order(
    node: FTreeNode, keys: list[tuple[str, bool]], candidates: np.ndarray
) -> np.ndarray:
    """*candidates* (entry indices of *node*) sorted by the node-local keys."""
    arrays: list[np.ndarray] = []
    for name, ascending in reversed(keys):
        column = node.block.column(name)
        values = column.values()[candidates]
        validity = column_validity(column)
        arrays.append(
            sort_key_array(
                values,
                column.dtype,
                ascending,
                None if validity is None else validity[candidates],
            )
        )
    return candidates[np.lexsort(arrays)]


def _ordered_limit(state: PipelineState, n: int, ctx: ExecutionContext) -> None:
    """Consume a deferred node-local Order-By with a Limit.

    The unfused GES_f equivalent of the TopK fusion: order the *entries*
    of the key-owning node (the paper's "special order column"), pick just
    enough leading entries to cover n tuples, and materialize only those —
    the bulk of the f-Tree is never enumerated.
    """
    tree = state.tree
    assert tree is not None and state.pending_order is not None
    node, keys = state.pending_order
    state.pending_order = None
    _node_local_top_k(state, node, keys, n, ctx)


def _node_local_top_k(
    state: PipelineState,
    node: FTreeNode,
    keys: list[tuple[str, bool]],
    n: int,
    ctx: ExecutionContext,
) -> None:
    tree = state.tree
    assert tree is not None
    attrs = state.output_attrs()
    for name, _ in keys:
        if name not in attrs:
            attrs.append(name)
    through = tuples_through(tree, node)
    candidates = np.flatnonzero(through > 0)
    valid_order = _entry_order(node, keys, candidates)
    if len(valid_order):
        covered = np.cumsum(through[valid_order])
        needed = int(np.searchsorted(covered, n)) + 1
        chosen = valid_order[:needed]
    else:
        chosen = valid_order
    saved_selection = node.selection
    pinned = np.zeros(len(node.block), dtype=bool)
    pinned[chosen] = True
    node.selection = saved_selection & pinned
    try:
        block = materialize(tree, attrs)
    finally:
        node.selection = saved_selection
    result = block.sort(keys).limit(n)
    ctx.stats.note_bytes(tree.nbytes + block.nbytes)
    state.tree = None
    state.flat = result
    state.projection = None


def _ticking(iterable, deadline):
    """Wrap a tuple enumeration with strided deadline checks (chunk boundary)."""
    if deadline is None:
        return iterable

    def gen():
        # Inline stride: a tick() call per tuple would dominate the loop.
        for i, item in enumerate(iterable):
            if not i & 255:
                deadline.check()
            yield item

    return gen()


def _factorized_limit(state: PipelineState, n: int, ctx: ExecutionContext) -> None:
    """Take the first n tuples via constant-delay enumeration (Lemma 4.4)."""
    tree = state.tree
    assert tree is not None
    attrs = state.output_attrs()
    rows: list[tuple[Any, ...]] = []
    if n > 0:
        deadline = ctx.deadline
        for i, tup in enumerate(tree.iter_tuples(attrs)):
            if deadline is not None and not i & 255:
                deadline.check()
            rows.append(tup)
            if len(rows) >= n:
                break
    state.tree = None
    state.flat = _rows_to_block(tree, attrs, rows)
    state.projection = None


class _Desc:
    """Inverts comparison order so heap-based top-k can sort descending."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Desc") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Desc) and other.value == self.value


def _sort_key(keys: Sequence[tuple[str, bool]], attrs: Sequence[str]):
    positions = [(attrs.index(name), ascending) for name, ascending in keys]

    def key(tup: tuple[Any, ...]) -> tuple[Any, ...]:
        return tuple(
            tup[pos] if ascending else _Desc(tup[pos]) for pos, ascending in positions
        )

    return key


def _fused_top_k(state: PipelineState, op: TopK, ctx: ExecutionContext) -> None:
    """Fused OrderBy+Limit over the f-Tree.

    Node-local sort keys take the vectorized ordered-entry path; keys
    spanning nodes stream the constant-delay enumeration through a bounded
    heap — either way, no full flat block is materialized.
    """
    tree = state.tree
    assert tree is not None
    names = [name for name, _ in op.keys]
    if all(tree.has_attr(name) for name in names):
        nodes = {id(tree.node_of(name)) for name in names}
        if len(nodes) == 1:
            _node_local_top_k(state, tree.node_of(names[0]), list(op.keys), op.n, ctx)
            return
    attrs = state.output_attrs()
    for name in names:
        if name not in attrs:
            attrs = attrs + [name]
    top = heapq.nsmallest(
        op.n,
        _ticking(tree.iter_tuples(attrs), ctx.deadline),
        key=_sort_key(op.keys, attrs),
    )
    ctx.stats.note_bytes(state.nbytes + _stream_bytes(len(top), len(attrs)))
    state.tree = None
    state.flat = _rows_to_block(tree, attrs, top)
    state.projection = None


def _fused_aggregate_top_k(
    state: PipelineState, op: AggregateTopK, ctx: ExecutionContext
) -> None:
    """AggregateProjectTop fusion: factorized- or stream-aggregate, then top-k."""
    tree = state.tree
    assert tree is not None
    node = _fast_path_node(tree, op.group_by, op.aggs)
    if node is not None:
        table = aggregate_on_node(tree, node, op.group_by, op.aggs)
    else:
        table = _streaming_aggregate(tree, op.group_by, op.aggs, ctx)
    if op.project_items is not None:
        table = project_block(table, op.project_items, ctx)
    result = table.sort(op.keys).limit(op.n)
    ctx.stats.note_bytes(state.nbytes + table.nbytes)
    state.tree = None
    state.flat = result
    state.projection = None


def _streaming_aggregate(
    tree: FTree, group_by: list[str], aggs: list[AggSpec], ctx: ExecutionContext
) -> FlatBlock:
    """Hash aggregation fed by the enumeration, skipping the flat block."""
    arg_names = [a.arg for a in aggs if a.arg is not None]
    attrs = list(dict.fromkeys(group_by + arg_names))
    positions = {name: i for i, name in enumerate(attrs)}

    accumulators: dict[tuple[Any, ...], list[Any]] = {}
    deadline = ctx.deadline
    for i, tup in enumerate(tree.iter_tuples(attrs)):
        if deadline is not None and not i & 255:
            deadline.check()
        key = tuple(tup[positions[g]] for g in group_by)
        acc = accumulators.get(key)
        if acc is None:
            acc = [_new_accumulator(a) for a in aggs]
            accumulators[key] = acc
        for slot, agg in zip(acc, aggs):
            _update_accumulator(slot, agg, tup, positions)
    if not group_by and not accumulators:
        accumulators[()] = [_new_accumulator(a) for a in aggs]
    ctx.stats.note_bytes(_stream_bytes(len(accumulators), len(attrs) + len(aggs)))

    out = FlatBlock()
    keys = list(accumulators.keys())
    for position, name in enumerate(group_by):
        dtype = _attr_dtype(tree, name)
        data, validity = pack_values([k[position] for k in keys], dtype)
        out.add_array(name, dtype, data, validity)
    for i, agg in enumerate(aggs):
        dtype = (
            DataType.INT64
            if agg.fn in ("count", "count_distinct")
            else DataType.FLOAT64
            if agg.fn == "avg"
            else _attr_dtype(tree, agg.arg)  # type: ignore[arg-type]
        )
        values = [_finish_accumulator(accumulators[k][i], agg, dtype) for k in keys]
        data, validity = pack_values(values, dtype)
        out.add_array(agg.out, dtype, data, validity)
    return out


def _attr_dtype(tree: FTree, attr: str) -> DataType:
    return tree.node_of(attr).block.column(attr).dtype


def _new_accumulator(agg: AggSpec) -> Any:
    if agg.fn == "count":
        return [0]
    if agg.fn == "count_distinct":
        return set()
    if agg.fn == "sum":
        return [0]
    if agg.fn in ("min", "max"):
        return [None]
    if agg.fn == "avg":
        return [0, 0]
    raise ExecutionError(f"unknown aggregate {agg.fn!r}")


def _update_accumulator(
    slot: Any, agg: AggSpec, tup: tuple[Any, ...], positions: Mapping[str, int]
) -> None:
    if agg.fn == "count" and agg.arg is None:
        slot[0] += 1
        return
    value = tup[positions[agg.arg]]  # type: ignore[index]
    if is_null(value):
        return  # NULLs never feed an aggregate (same mask as the flat path)
    if agg.fn == "count":
        slot[0] += 1
    elif agg.fn == "count_distinct":
        slot.add(value)
    elif agg.fn == "sum":
        slot[0] += value
    elif agg.fn == "min":
        slot[0] = value if slot[0] is None or value < slot[0] else slot[0]
    elif agg.fn == "max":
        slot[0] = value if slot[0] is None or value > slot[0] else slot[0]
    elif agg.fn == "avg":
        slot[0] += value
        slot[1] += 1


def _finish_accumulator(slot: Any, agg: AggSpec, dtype: DataType) -> Any:
    if agg.fn == "count_distinct":
        return len(slot)
    if agg.fn in ("count", "sum"):
        return slot[0]
    if agg.fn in ("min", "max"):
        # An empty (or all-NULL) group yields NULL (None → cleared validity
        # bit downstream), same as the flat aggregation.
        return slot[0]
    if agg.fn == "avg":
        return float(slot[0]) / slot[1] if slot[1] else None
    raise ExecutionError(f"unknown aggregate {agg.fn!r}")


def _stream_bytes(entries: int, width: int) -> int:
    """Rough footprint estimate of a streaming container (heap/hash table)."""
    return entries * (8 * width + 48)


def _rows_to_block(tree: FTree, attrs: Sequence[str], rows: list[tuple[Any, ...]]) -> FlatBlock:
    block = FlatBlock()
    for i, attr in enumerate(attrs):
        dtype = _attr_dtype(tree, attr)
        data, validity = pack_values([r[i] for r in rows], dtype)
        block.add_array(attr, dtype, data, validity)
    return block
