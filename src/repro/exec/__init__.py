"""Query executors: flat (GES), factorized (GES_f), fused host, runtime."""

from . import analytics  # noqa: F401 — registers the OLAP procedures
from .base import ExecStats, ExecutionContext, QueryResult
from .factorized import execute_factorized
from .flat import execute_flat
from .procedures import get_procedure, register_procedure
from .runtime import SimulationResult, run_inter_query, run_sequential, simulate_service

__all__ = [
    "ExecStats",
    "ExecutionContext",
    "QueryResult",
    "SimulationResult",
    "execute_factorized",
    "execute_flat",
    "get_procedure",
    "register_procedure",
    "run_inter_query",
    "run_sequential",
    "simulate_service",
]
