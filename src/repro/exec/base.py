"""Execution infrastructure shared by all engine variants.

Holds the per-query :class:`ExecStats` (operator timings, peak intermediate
size — the instrumentation behind the paper's Figure 3 and Table 2), the
:class:`ExecutionContext` threading the graph read view and parameters
through operators, and the :class:`QueryResult` returned to callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from ..core.flatblock import FlatBlock
from ..errors import ExecutionError
from ..obs.clock import now
from ..obs.tracing import SpanTracer
from ..resilience import faults
from ..resilience.watchdog import current_deadline
from ..storage.graph import GraphReadView
from ..types import DataType


class ExecStats:
    """Per-query execution statistics.

    * ``op_times`` — cumulative seconds per operator name (Figure 3).
    * ``peak_intermediate_bytes`` — max footprint of the structure passed
      between operators (Table 2).  Stored-procedure internals are excluded
      per the paper's accounting note.
    * ``defactor_count`` — how often the executor had to fall back from the
      f-Tree to a flat block.
    * ``degrade_count`` — how often the service stepped down a rung of the
      resilience degradation ladder while answering this query (executor
      fallback, uncached compile, …).
    * ``compile_seconds`` / ``stage_times`` — time the service spent turning
      query text or a logical plan into the physical pipeline, broken down
      by compile stage (``parse`` / ``bind`` / ``optimize``); lets the
      benchmark harness report compilation overhead separately from
      execution.
    * ``plan_cache_hits`` / ``plan_cache_misses`` — plan-cache outcomes of
      the compiles behind this query (untouched when the cache is off).
    * ``flat_tuples`` / ``ftree_slots`` — accumulated whenever an f-Tree is
      flattened: output tuple count vs. the f-Tree entries ("slots") that
      encoded them.  Their quotient is the factorization compression ratio
      (FDB-style), exported as ``ges_compression_ratio``.
    * ``trace`` — the per-query span tree (:mod:`repro.obs.tracing`) when
      tracing is on; the flat aggregates above are the derived view of it
      kept for backward compatibility and always-on cheap accounting.
    """

    def __init__(self) -> None:
        self.op_times: dict[str, float] = {}
        self.op_sequence: list[tuple[str, float, int]] = []
        self.peak_intermediate_bytes = 0
        self.defactor_count = 0
        self.degrade_count = 0
        self.rows_out = 0
        self.total_seconds = 0.0
        self.compile_seconds = 0.0
        self.stage_times: dict[str, float] = {}
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.flat_tuples = 0
        self.ftree_slots = 0
        #: How the service routed this query: ``scatter`` / ``whole``
        #: (worker pool), ``in-process`` (pool declined or absent), or ""
        #: before routing has been decided.  Recorded per query so the
        #: flight recorder can explain *why* a pooled query fell back.
        self.route = ""
        #: Per-partition worker timings of a scattered query:
        #: ``(partition_index, worker_seconds, rows)`` tuples.
        self.partition_times: list[tuple[int, float, int]] = []
        #: Every degradation reason noted for this query, in order —
        #: the always-on companion to ``degrade_count`` so the flight
        #: recorder can explain fallbacks without tracing enabled.
        self.degrade_reasons: list[str] = []
        self.trace: SpanTracer | None = None

    def begin_trace(self, name: str = "query") -> SpanTracer:
        """Attach a span tracer, making this query's execution traced.

        Idempotent: an already-attached tracer is kept (multi-stage LDBC
        queries thread one ExecStats through several ``execute`` calls, all
        landing under one root span).
        """
        if self.trace is None:
            self.trace = SpanTracer(name)
        return self.trace

    def record_op(self, name: str, seconds: float, out_bytes: int) -> None:
        self.op_times[name] = self.op_times.get(name, 0.0) + seconds
        self.op_sequence.append((name, seconds, out_bytes))
        if out_bytes > self.peak_intermediate_bytes:
            self.peak_intermediate_bytes = out_bytes

    def note_bytes(self, nbytes: int) -> None:
        if nbytes > self.peak_intermediate_bytes:
            self.peak_intermediate_bytes = nbytes

    def note_defactor(self) -> None:
        self.defactor_count += 1
        if self.trace is not None:
            attrs = self.trace.current.attrs
            attrs["defactor"] = attrs.get("defactor", 0) + 1

    def note_degrade(self, reason: str) -> None:
        """Account one step down the degradation ladder (and tag the span)."""
        self.degrade_count += 1
        self.degrade_reasons.append(reason)
        if self.trace is not None:
            attrs = self.trace.current.attrs
            attrs["degraded"] = attrs.get("degraded", 0) + 1
            attrs["degrade_reason"] = reason

    def note_compression(self, flat_tuples: int, ftree_slots: int) -> None:
        """Account one f-Tree flattening: tuples produced vs. slots held."""
        self.flat_tuples += flat_tuples
        self.ftree_slots += ftree_slots

    @property
    def compression_ratio(self) -> float:
        """Flat tuple count ÷ f-Tree slot count (>1 ⇒ factorization won);
        nan when nothing was ever flattened (e.g. the flat executor)."""
        if not self.ftree_slots:
            return float("nan")
        return self.flat_tuples / self.ftree_slots

    def record_compile(
        self,
        seconds: float,
        stages: Mapping[str, float] | None = None,
        cache_hit: bool | None = None,
    ) -> None:
        """Account one compile of this query's pipeline.

        ``cache_hit`` is None when the plan cache is disabled (no outcome
        to count), else whether the compile was served from the cache.
        """
        self.compile_seconds += seconds
        for name, stage_seconds in (stages or {}).items():
            self.stage_times[name] = self.stage_times.get(name, 0.0) + stage_seconds
        if cache_hit is True:
            self.plan_cache_hits += 1
        elif cache_hit is False:
            self.plan_cache_misses += 1

    @property
    def cache_hit(self) -> bool:
        """True when every compile behind this query hit the plan cache."""
        return self.plan_cache_hits > 0 and self.plan_cache_misses == 0

    def merge(self, other: "ExecStats") -> None:
        """Fold another query stage's stats into this one.

        Every data field must be carried here — the round-trip test in
        ``tests/test_observability.py`` populates *all* public fields via
        reflection and asserts merging into a fresh ExecStats loses
        nothing, so a future field missed here fails loudly.
        """
        for name, seconds in other.op_times.items():
            self.op_times[name] = self.op_times.get(name, 0.0) + seconds
        self.op_sequence.extend(other.op_sequence)
        self.peak_intermediate_bytes = max(
            self.peak_intermediate_bytes, other.peak_intermediate_bytes
        )
        self.defactor_count += other.defactor_count
        self.degrade_count += other.degrade_count
        self.rows_out += other.rows_out
        self.total_seconds += other.total_seconds
        self.compile_seconds += other.compile_seconds
        for name, seconds in other.stage_times.items():
            self.stage_times[name] = self.stage_times.get(name, 0.0) + seconds
        self.plan_cache_hits += other.plan_cache_hits
        self.plan_cache_misses += other.plan_cache_misses
        self.flat_tuples += other.flat_tuples
        self.ftree_slots += other.ftree_slots
        if other.route:  # the stage that actually routed wins
            self.route = other.route
        self.partition_times.extend(other.partition_times)
        self.degrade_reasons.extend(other.degrade_reasons)
        if other.trace is not None:
            if self.trace is None:
                self.trace = other.trace
            else:
                self.trace.adopt(other.trace)

    def dominant_operator(self) -> tuple[str, float]:
        """(name, share of total op time) of the costliest operator."""
        total = sum(self.op_times.values())
        if not total:
            return ("", 0.0)
        name = max(self.op_times, key=lambda k: self.op_times[k])
        return (name, self.op_times[name] / total)

    def __repr__(self) -> str:
        return (
            f"ExecStats(total={self.total_seconds * 1e3:.2f}ms, "
            f"peak={self.peak_intermediate_bytes}B, defactor={self.defactor_count})"
        )


@dataclass
class QueryResult:
    """Final rows of a query plus its execution statistics."""

    columns: list[str]
    rows: list[tuple[Any, ...]]
    stats: ExecStats = field(default_factory=ExecStats)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def column_values(self, name: str) -> list[Any]:
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise ExecutionError(f"result has no column {name!r}") from None
        return [row[idx] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


class ExecutionContext:
    """Everything an operator needs: the read view, params, stats, labels."""

    def __init__(
        self,
        view: GraphReadView,
        params: Mapping[str, Any] | None = None,
        stats: ExecStats | None = None,
    ) -> None:
        self.view = view
        self.params: dict[str, Any] = dict(params or {})
        self.stats = stats if stats is not None else ExecStats()
        # Cached so hot paths pay one attribute read, not two, to decide
        # whether spans exist for this query.
        self.tracing = self.stats.trace is not None
        # Ambient per-query deadline, captured once; None when unbounded.
        self.deadline = current_deadline()
        self.var_labels: dict[str, str] = {}

    def label_of(self, var: str) -> str:
        try:
            return self.var_labels[var]
        except KeyError:
            raise ExecutionError(f"unbound vertex variable {var!r}") from None


#: Injected per-operator slowdown factors — the perf regression gate's
#: self-test hook (``repro perf record --inject-slowdown Expand=2.0``).
#: Empty in normal operation: the only hot-path cost is one truthiness
#: check of a module global per operator exit.
_SLOWDOWNS: dict[str, float] = {}


def set_injected_slowdowns(factors: Mapping[str, float] | None) -> None:
    """Install (or clear, with None/empty) operator slowdown factors.

    A factor F > 1 on operator ``name`` makes every ``OpTimer`` for that
    operator busy-wait until F× its real elapsed time has passed — a
    *genuine* wall-clock slowdown, so the regression gate's self-test
    measures a real effect rather than doctored numbers.  Test/CI only.
    """
    _SLOWDOWNS.clear()
    for name, factor in (factors or {}).items():
        if factor <= 1.0:
            raise ValueError(f"slowdown factor for {name!r} must be > 1.0")
        _SLOWDOWNS[name] = float(factor)


class OpTimer:
    """Context manager timing one operator and recording the output size.

    When the query is traced, each OpTimer additionally opens one span
    under the current one; :meth:`annotate` attaches operator attributes
    (rows, f-Block count, …) to it.  Untraced queries never allocate a
    span — the only extra cost is a None check on enter and exit.
    """

    def __init__(self, ctx: ExecutionContext, name: str) -> None:
        self.ctx = ctx
        self.name = name
        self._start = 0.0
        self.out_bytes = 0
        self._span = None

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to this operator's span (no-op untraced)."""
        if self._span is not None:
            self._span.attrs.update(attrs)

    def __enter__(self) -> "OpTimer":
        # Operator boundaries are the coarse cancellation points: a query
        # past its deadline stops before the next operator rather than
        # running the pipeline to completion.
        deadline = self.ctx.deadline
        if deadline is not None:
            deadline.check()
        if faults.ACTIVE is not None:
            faults.ACTIVE.fire("executor.operator")
        if self.ctx.tracing:
            self._span = self.ctx.stats.trace.begin(self.name)
        self._start = now()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        elapsed = now() - self._start
        if _SLOWDOWNS:
            factor = _SLOWDOWNS.get(self.name, 0.0)
            if factor > 1.0:
                deadline = self._start + elapsed * factor
                while now() < deadline:  # busy-wait: a real measured slowdown
                    pass
                elapsed = now() - self._start
        self.ctx.stats.record_op(self.name, elapsed, self.out_bytes)
        if self._span is not None:
            self._span.attrs.setdefault("out_bytes", self.out_bytes)
            self.ctx.stats.trace.end()


class BlockResolver:
    """Column resolver over a :class:`FlatBlock` for expression evaluation."""

    def __init__(self, block: FlatBlock) -> None:
        self._block = block

    def resolve(self, name: str) -> np.ndarray:
        return self._block.array(name)

    def dtype_of(self, name: str) -> DataType:
        return self._block.dtype(name)

    def validity_of(self, name: str) -> np.ndarray | None:
        return self._block.validity(name)


class ArraysResolver:
    """Column resolver over a plain dict of arrays (Expand-time filters)."""

    def __init__(
        self,
        arrays: Mapping[str, np.ndarray],
        dtypes: Mapping[str, DataType],
        validity: Mapping[str, np.ndarray | None] | None = None,
    ) -> None:
        self._arrays = arrays
        self._dtypes = dtypes
        self._validity = validity or {}

    def resolve(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise ExecutionError(f"no column {name!r} in expansion scope") from None

    def dtype_of(self, name: str) -> DataType:
        return self._dtypes.get(name, DataType.INT64)

    def validity_of(self, name: str) -> np.ndarray | None:
        return self._validity.get(name)


def result_from_flat(
    block: FlatBlock, returns: Sequence[str] | None, stats: ExecStats
) -> QueryResult:
    """Build the final :class:`QueryResult` from a flat block.

    NULLs surface as Python None: ``to_pylist`` consults each column's
    validity bitmap, so no sentinel scrubbing happens at this boundary.
    """
    columns = list(returns) if returns is not None else block.schema
    missing = [c for c in columns if not block.has_column(c)]
    if missing:
        raise ExecutionError(f"plan returns unknown columns {missing}")
    rows = block.to_pylist(columns)
    stats.rows_out = len(rows)
    return QueryResult(columns, rows, stats)
