"""Tests for the parameterized plan cache and compile instrumentation."""

import random

import numpy as np
import pytest

from repro import DataType, EngineConfig, GES, PropertyDef, VertexLabelDef
from repro.engine.plan_cache import PlanCache, PlanCacheStats, plan_fingerprint
from repro.exec.base import ExecStats
from repro.ldbc import ParameterGenerator, REGISTRY
from repro.plan.expressions import Col, InSet, Lit, Param
from repro.plan.logical import (
    Filter,
    GetProperty,
    Limit,
    LogicalPlan,
    NodeByIdSeek,
    NodeScan,
    OrderBy,
    Project,
)

CYPHER = "MATCH (m:Message) RETURN m.length AS len ORDER BY len DESC LIMIT 2"


def template_plan() -> LogicalPlan:
    """A parameterized template plan (fresh instance per call)."""
    return LogicalPlan(
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            GetProperty("p", "age", "age"),
            Filter(Col("age") >= Param("minAge")),
            Project([("age", Col("age"))]),
            OrderBy([("age", True)]),
            Limit(5),
        ],
        returns=["age"],
    )


class TestPlanCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_hit_miss_counters(self):
        cache = PlanCache(capacity=4)
        assert cache.lookup("k") is None
        plan = template_plan()
        cache.store("k", plan)
        assert cache.lookup("k") is plan
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_prefers_recently_used(self):
        cache = PlanCache(capacity=2)
        a, b, c = template_plan(), template_plan(), template_plan()
        cache.store("a", a)
        cache.store("b", b)
        assert cache.lookup("a") is a  # refresh "a"; "b" is now LRU
        cache.store("c", c)
        assert cache.stats.evictions == 1
        assert cache.lookup("b") is None
        assert cache.lookup("a") is a
        assert cache.lookup("c") is c

    def test_invalidate_clears_and_counts(self):
        cache = PlanCache(capacity=4)
        cache.store("a", template_plan())
        cache.store("b", template_plan())
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.stats.invalidations == 1
        assert cache.lookup("a") is None

    def test_describe(self):
        cache = PlanCache(capacity=3)
        info = cache.describe()
        assert info["enabled"] is True
        assert info["capacity"] == 3
        assert {"size", "hits", "misses", "evictions", "hit_rate"} <= info.keys()

    def test_stats_empty_hit_rate(self):
        assert PlanCacheStats().hit_rate == 0.0


class TestPlanFingerprint:
    def test_stable_across_rebuilds(self):
        assert plan_fingerprint(template_plan()) == plan_fingerprint(template_plan())

    def test_distinguishes_structure(self):
        other = LogicalPlan([NodeScan("p", "Person")], returns=None)
        assert plan_fingerprint(template_plan()) != plan_fingerprint(other)

    def test_distinguishes_literal_values(self):
        one = LogicalPlan([NodeScan("p", "Person"), Filter(Col("p") == Lit(1))])
        two = LogicalPlan([NodeScan("p", "Person"), Filter(Col("p") == Lit(2))])
        assert plan_fingerprint(one) != plan_fingerprint(two)

    def test_data_bearing_literal_is_uncacheable(self):
        rows = np.arange(3, dtype=np.int64)
        plan = LogicalPlan(
            [NodeScan("p", "Person"), Filter(Col("p") == Lit(rows))]
        )
        assert plan_fingerprint(plan) is None

    def test_memoized_on_instance(self):
        plan = template_plan()
        first = plan_fingerprint(plan)
        assert plan._fingerprint == first
        assert plan_fingerprint(plan) is first


class TestServicePlanCache:
    def test_cypher_second_execution_hits(self, micro_store):
        engine = GES(micro_store)
        first, second = ExecStats(), ExecStats()
        engine.execute(CYPHER, stats=first)
        engine.execute(CYPHER, stats=second)
        assert first.plan_cache_misses == 1 and not first.cache_hit
        assert second.plan_cache_hits == 1 and second.cache_hit
        assert engine.plan_cache.stats.hits == 1

    def test_cached_physical_plan_is_reused(self, micro_store):
        engine = GES(micro_store)
        assert engine.plan(CYPHER) is engine.plan(CYPHER)

    def test_equivalent_plan_objects_share_entry(self, micro_store):
        engine = GES(micro_store)
        engine.execute(template_plan(), {"personId": 1, "minAge": 0})
        stats = ExecStats()
        engine.execute(template_plan(), {"personId": 3, "minAge": 20}, stats=stats)
        assert stats.cache_hit

    def test_uncacheable_plan_bypasses_cache(self, micro_store):
        engine = GES(micro_store)
        plan = LogicalPlan(
            [NodeScan("p", "Person"), Filter(InSet(Col("p"), Lit(frozenset({0, 2}))))],
            returns=None,
        )
        engine.execute(plan)
        engine.execute(plan)
        assert engine.plan_cache.stats.lookups == 0

    def test_compile_stage_timings_recorded(self, micro_store):
        stats = ExecStats()
        GES(micro_store).execute(CYPHER, stats=stats)
        assert stats.compile_seconds > 0
        assert {"parse", "bind", "optimize"} <= stats.stage_times.keys()

    def test_disabled_cache(self, micro_store):
        engine = GES(micro_store, EngineConfig.ges_f_star(plan_cache=False))
        stats = ExecStats()
        engine.execute(CYPHER, stats=stats)
        engine.execute(CYPHER, stats=stats)
        assert engine.plan_cache is None
        assert stats.plan_cache_hits == 0 and stats.plan_cache_misses == 0
        assert engine.describe()["plan_cache"] == {"enabled": False}

    def test_describe_surfaces_cache(self, micro_store):
        engine = GES(micro_store)
        engine.execute(CYPHER)
        info = engine.describe()["plan_cache"]
        assert info["enabled"] is True
        assert info["size"] == 1

    def test_schema_change_invalidates(self, micro_store):
        engine = GES(micro_store)
        engine.execute(CYPHER)
        assert len(engine.plan_cache) == 1
        micro_store.schema.add_vertex_label(
            VertexLabelDef(
                "Widget", [PropertyDef("id", DataType.INT64)], primary_key="id"
            )
        )
        stats = ExecStats()
        engine.execute(CYPHER, stats=stats)
        assert engine.plan_cache.stats.invalidations == 1
        assert not stats.cache_hit  # recompiled against the new schema
        assert engine.describe()["plan_cache"]["size"] == 1


class TestFuzzedDdlInvalidation:
    """Seeded random DDL streams against the cache's schema fingerprint.

    Every schema change — however irrelevant to the cached queries — must
    invalidate exactly once, the very next execution must recompile, and
    the answer must be identical before and after.  Runs both the
    text-keyed and the fingerprint-keyed (plan-object) cache paths.
    """

    def _random_ddl(self, schema, rng: random.Random, i: int) -> None:
        from repro import DataType, EdgeLabelDef, PropertyDef, VertexLabelDef

        dtypes = (DataType.INT64, DataType.FLOAT64, DataType.STRING, DataType.BOOL)
        if rng.random() < 0.5:
            props = [PropertyDef("id", DataType.INT64)] + [
                PropertyDef(f"p{j}", rng.choice(dtypes))
                for j in range(rng.randint(0, 3))
            ]
            schema.add_vertex_label(
                VertexLabelDef(f"Fuzz{i}", props, primary_key="id")
            )
        else:
            labels = list(schema.vertex_labels)
            schema.add_edge_label(
                EdgeLabelDef(
                    f"FUZZ_REL_{i}", rng.choice(labels), rng.choice(labels)
                )
            )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_ddl_invalidates_and_answers_survive(self, micro_store, seed):
        engine = GES(micro_store)
        rng = random.Random(f"ddl:{seed}")
        baseline = engine.execute(CYPHER).rows
        ddl_count = 0
        for i in range(12):
            if rng.random() < 0.6:
                self._random_ddl(micro_store.schema, rng, f"{seed}_{i}")
                ddl_count += 1
                stats = ExecStats()
                result = engine.execute(CYPHER, stats=stats)
                # The very next execution recompiles against the new schema...
                assert not stats.cache_hit, f"step {i}: stale plan served after DDL"
                assert result.rows == baseline
            stats = ExecStats()
            result = engine.execute(CYPHER, stats=stats)
            # ...and the cache immediately warms back up.
            assert stats.cache_hit, f"step {i}: cache did not rebuild"
            assert result.rows == baseline
        assert engine.plan_cache.stats.invalidations == ddl_count

    def test_plan_object_cache_invalidated_by_ddl(self, micro_store):
        from repro import DataType, PropertyDef, VertexLabelDef

        engine = GES(micro_store)
        engine.execute(template_plan(), {"personId": 1, "minAge": 0})
        micro_store.schema.add_vertex_label(
            VertexLabelDef(
                "FuzzPlanObj", [PropertyDef("id", DataType.INT64)], primary_key="id"
            )
        )
        stats = ExecStats()
        engine.execute(template_plan(), {"personId": 1, "minAge": 0}, stats=stats)
        assert not stats.cache_hit
        assert engine.plan_cache.stats.invalidations == 1

    def test_interleaved_texts_all_flushed(self, micro_store):
        from repro import DataType, PropertyDef, VertexLabelDef

        engine = GES(micro_store)
        other = "MATCH (p:Person) RETURN count(*) AS n"
        engine.execute(CYPHER)
        engine.execute(other)
        assert len(engine.plan_cache) == 2
        micro_store.schema.add_vertex_label(
            VertexLabelDef(
                "FuzzFlush", [PropertyDef("id", DataType.INT64)], primary_key="id"
            )
        )
        stats_a, stats_b = ExecStats(), ExecStats()
        engine.execute(CYPHER, stats=stats_a)
        engine.execute(other, stats=stats_b)
        # One invalidation flushes *every* entry, not just the executed key.
        assert not stats_a.cache_hit and not stats_b.cache_hit
        assert engine.plan_cache.stats.invalidations == 1


class TestExecStatsMerge:
    def test_merge_carries_rows_out(self):
        # Regression: merge() silently dropped the other side's rows_out.
        a, b = ExecStats(), ExecStats()
        a.rows_out, b.rows_out = 7, 5
        a.merge(b)
        assert a.rows_out == 12

    def test_merge_folds_compile_counters(self):
        a, b = ExecStats(), ExecStats()
        a.record_compile(0.5, {"parse": 0.2}, cache_hit=False)
        b.record_compile(0.25, {"parse": 0.1, "optimize": 0.05}, cache_hit=True)
        a.merge(b)
        assert a.compile_seconds == 0.75
        assert a.stage_times == {"parse": 0.30000000000000004, "optimize": 0.05}
        assert a.plan_cache_hits == 1 and a.plan_cache_misses == 1
        assert not a.cache_hit  # mixed outcome is not a pure hit


class TestStoreVersionedDelete:
    def test_versioned_remove_edge_decreases_edge_count(self, micro_store):
        from repro.storage.graph import VertexRef

        before = micro_store.edge_count
        removed = micro_store.remove_edge(
            "KNOWS", VertexRef("Person", 0), VertexRef("Person", 1), version=5
        )
        assert removed
        assert micro_store.edge_count == before - 1


QUERIES = ("IC2", "IC5", "IC11", "IS1", "IS3", "IS7")
VARIANTS = {
    "GES": EngineConfig.ges,
    "GES_f": EngineConfig.ges_f,
    "GES_f*": EngineConfig.ges_f_star,
}


@pytest.mark.parametrize("name", QUERIES)
def test_variants_agree_cache_on_and_off(sf1_dataset, name):
    """All three variants return identical rows with the cache on and off,
    and the cache-on rows are identical on the cold and the warm pass."""
    params = ParameterGenerator(sf1_dataset, seed=3).params_for(name)
    reference = None
    for variant, make_config in VARIANTS.items():
        cached = GES(sf1_dataset.store, make_config(plan_cache=True))
        cold = REGISTRY[name].fn(cached, params, ExecStats())
        warm = REGISTRY[name].fn(cached, params, ExecStats())
        uncached = GES(sf1_dataset.store, make_config(plan_cache=False))
        off = REGISTRY[name].fn(uncached, params, ExecStats())
        assert cold == warm, f"{variant}/{name}: warm cache changed the rows"
        assert cold == off, f"{variant}/{name}: plan cache changed the rows"
        if reference is None:
            reference = cold
        else:
            assert cold == reference, f"{name}: {variant} disagrees across variants"
