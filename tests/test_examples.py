"""Smoke tests: every example script must run end-to-end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "GES_f*" in out
    assert "persons after insert: 6" in out


def test_social_recommendation(capsys):
    out = run_example("social_recommendation.py", capsys)
    assert "content feed" in out
    assert "more" in out  # the flat-vs-factorized memory comparison line


def test_fraud_detection(capsys):
    out = run_example("fraud_detection.py", capsys)
    assert "transfer rings" in out
    assert "7 -> 8" in out  # the planted burst


@pytest.mark.slow
def test_benchmark_tour(capsys):
    out = run_example("benchmark_tour.py", capsys)
    assert "LDBC SNB Interactive" in out
    assert "workers" in out


def test_graph_analytics(capsys):
    out = run_example("graph_analytics.py", capsys)
    assert "most influential members" in out
    assert "triangles in the friendship graph" in out
