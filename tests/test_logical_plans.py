"""Tests for logical plan construction and label resolution."""

import pytest

from repro.errors import PlanError
from repro.plan import (
    AggSpec,
    Expand,
    GetProperty,
    Limit,
    LogicalPlan,
    NodeByIdSeek,
    NodeScan,
    OrderBy,
    VertexExpand,
    lit,
    plan_summary,
    resolve_labels,
)
from repro.storage.catalog import Direction


class TestValidation:
    def test_empty_plan_rejected(self):
        with pytest.raises(PlanError):
            LogicalPlan([])

    def test_invalid_hop_range(self):
        with pytest.raises(PlanError):
            Expand("a", "b", "E", Direction.OUT, min_hops=2, max_hops=1)

    def test_zero_min_hops_rejected(self):
        with pytest.raises(PlanError):
            Expand("a", "b", "E", Direction.OUT, min_hops=0, max_hops=1)

    def test_edge_props_on_multi_hop_rejected(self):
        with pytest.raises(PlanError):
            Expand("a", "b", "E", Direction.OUT, max_hops=2, edge_props={"x": "y"})

    def test_optional_multi_hop_rejected(self):
        with pytest.raises(PlanError):
            Expand("a", "b", "E", Direction.OUT, max_hops=2, optional=True)

    def test_unknown_aggregate_fn(self):
        with pytest.raises(PlanError):
            AggSpec("out", "median", "x")

    def test_aggregate_arg_required(self):
        with pytest.raises(PlanError):
            AggSpec("out", "sum", None)

    def test_count_star_allowed(self):
        assert AggSpec("out", "count", None).arg is None


class TestResolveLabels:
    def test_seek_and_expand(self, micro_schema):
        plan = LogicalPlan(
            [
                NodeByIdSeek("p", "Person", lit(0)),
                Expand("p", "f", "KNOWS", Direction.OUT),
                Expand("f", "m", "HAS_CREATOR", Direction.IN),
            ]
        )
        labels = resolve_labels(plan, micro_schema)
        assert labels == {"p": "Person", "f": "Person", "m": "Message"}

    def test_unbound_expand_rejected(self, micro_schema):
        plan = LogicalPlan([Expand("ghost", "x", "KNOWS", Direction.OUT)])
        with pytest.raises(PlanError):
            resolve_labels(plan, micro_schema)

    def test_explicit_to_label_wins(self, micro_schema):
        plan = LogicalPlan(
            [
                NodeScan("m", "Message"),
                Expand("m", "t", "HAS_TAG", Direction.OUT, to_label="Tag"),
            ]
        )
        assert resolve_labels(plan, micro_schema)["t"] == "Tag"

    def test_vertex_expand_resolved(self, micro_schema):
        plan = LogicalPlan(
            [
                VertexExpand(
                    "p", "Person", lit(0), Expand("p", "f", "KNOWS", Direction.OUT)
                )
            ]
        )
        labels = resolve_labels(plan, micro_schema)
        assert labels == {"p": "Person", "f": "Person"}


class TestSummary:
    def test_plan_summary(self, micro_schema):
        plan = LogicalPlan(
            [
                NodeByIdSeek("p", "Person", lit(0)),
                GetProperty("p", "age", "age"),
                OrderBy([("age", True)]),
                Limit(5),
            ]
        )
        assert plan_summary(plan) == "NodeByIdSeek -> GetProperty -> OrderBy -> Limit"
