"""Tests for the cross-engine validation audit."""

import pytest

from repro.ldbc import generate, validate
from repro.ldbc.validation import Mismatch, ValidationReport


class TestValidationReport:
    def test_empty_report_passes(self):
        report = ValidationReport()
        assert report.passed
        assert "PASS" in report.summary()

    def test_mismatch_fails(self):
        report = ValidationReport(checks=1)
        report.mismatches.append(Mismatch("IC1", "GES_f", {}, 2, 3))
        assert not report.passed
        assert "FAIL" in report.summary()

    def test_error_fails(self):
        report = ValidationReport(checks=1)
        report.errors.append(("IC1", "GES_f", "boom"))
        assert not report.passed


class TestValidate:
    def test_sf1_passes(self, sf1_dataset):
        report = validate(sf1_dataset, queries=["IC2", "IC5", "IS3"], draws=2)
        assert report.passed, report.summary()
        # 3 queries x 2 draws x 4 engines.
        assert report.checks == 24

    def test_without_volcano(self, sf1_dataset):
        report = validate(
            sf1_dataset, queries=["IS1"], draws=1, include_volcano=False
        )
        assert report.passed
        assert report.checks == 3

    def test_update_queries_rejected(self, sf1_dataset):
        with pytest.raises(ValueError):
            validate(sf1_dataset, queries=["IU1"], draws=1)

    def test_default_covers_all_reads(self):
        dataset = generate("SF1", seed=42)
        report = validate(dataset, draws=1)
        assert report.passed, report.summary()
        assert report.checks == (14 + 7) * 1 * 4

    def test_errors_are_captured_not_raised(self, sf1_dataset, monkeypatch):
        from repro.ldbc import REGISTRY
        from repro.ldbc.queries.common import LdbcQueryDef

        def explode(engine, params, stats):
            raise RuntimeError("injected failure")

        monkeypatch.setitem(
            REGISTRY, "IS4", LdbcQueryDef("IS4", "IS", explode, "injected")
        )
        report = validate(sf1_dataset, queries=["IS4"], draws=1)
        assert not report.passed
        assert len(report.errors) == 4  # one per engine
