"""Tests for the cross-engine validation audit."""

import math

import numpy as np
import pytest

from repro.ldbc import generate, validate
from repro.ldbc.validation import (
    Mismatch,
    ValidationReport,
    bags_equal,
    normalize_row,
    normalize_value,
    rows_bag,
)


class TestNormalization:
    """NaN is the flat engines' NULL float; None is the row engine's.

    Regression for the comparator treating them as distinct values (which
    reported false mismatches on every nullable-float column) — both must
    collapse into the single NULL class.
    """

    def test_nan_normalizes_to_none(self):
        assert normalize_value(float("nan")) is None
        assert normalize_value(np.float64("nan")) is None

    def test_numpy_scalars_unboxed(self):
        assert normalize_value(np.int64(7)) == 7
        assert isinstance(normalize_value(np.int64(7)), int)
        assert normalize_value(np.float64(1.5)) == 1.5
        assert normalize_value(np.bool_(True)) is True

    def test_plain_values_pass_through(self):
        for value in (0, -3, 2.5, "x", None, True, math.inf):
            assert normalize_value(value) == value

    def test_nan_rows_are_self_equal_and_hashable(self):
        row = normalize_row((1, float("nan"), "a"))
        assert row == (1, None, "a")
        assert hash(row) == hash((1, None, "a"))

    def test_bags_equal_across_null_representations(self):
        flat = [(1, float("nan")), (2, 3.0)]
        volcano = [(2, 3.0), (1, None)]
        assert bags_equal(flat, volcano)
        assert rows_bag(flat) == rows_bag(volcano)

    def test_bags_distinguish_real_floats(self):
        assert not bags_equal([(1.0,)], [(2.0,)])
        assert not bags_equal([(float("nan"),)], [(2.0,)])

    def test_bag_multiplicity_matters(self):
        assert not bags_equal([(1,), (1,)], [(1,)])


class TestValidationReport:
    def test_empty_report_passes(self):
        report = ValidationReport()
        assert report.passed
        assert "PASS" in report.summary()

    def test_mismatch_fails(self):
        report = ValidationReport(checks=1)
        report.mismatches.append(Mismatch("IC1", "GES_f", {}, 2, 3))
        assert not report.passed
        assert "FAIL" in report.summary()

    def test_error_fails(self):
        report = ValidationReport(checks=1)
        report.errors.append(("IC1", "GES_f", "boom"))
        assert not report.passed


class TestValidate:
    def test_sf1_passes(self, sf1_dataset):
        report = validate(sf1_dataset, queries=["IC2", "IC5", "IS3"], draws=2)
        assert report.passed, report.summary()
        # 3 queries x 2 draws x 4 engines.
        assert report.checks == 24

    def test_without_volcano(self, sf1_dataset):
        report = validate(
            sf1_dataset, queries=["IS1"], draws=1, include_volcano=False
        )
        assert report.passed
        assert report.checks == 3

    def test_update_queries_rejected(self, sf1_dataset):
        with pytest.raises(ValueError):
            validate(sf1_dataset, queries=["IU1"], draws=1)

    def test_default_covers_all_reads(self):
        dataset = generate("SF1", seed=42)
        report = validate(dataset, draws=1)
        assert report.passed, report.summary()
        assert report.checks == (14 + 7) * 1 * 4

    def test_errors_are_captured_not_raised(self, sf1_dataset, monkeypatch):
        from repro.ldbc import REGISTRY
        from repro.ldbc.queries.common import LdbcQueryDef

        def explode(engine, params, stats):
            raise RuntimeError("injected failure")

        monkeypatch.setitem(
            REGISTRY, "IS4", LdbcQueryDef("IS4", "IS", explode, "injected")
        )
        report = validate(sf1_dataset, queries=["IS4"], draws=1)
        assert not report.passed
        assert len(report.errors) == 4  # one per engine
