"""Property-based tests: f-Tree semantics against a brute-force oracle.

The oracle implements equations (1) and (2) of the paper directly (nested
Python loops over ranges), independently of the production enumeration and
materialization code paths.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Column, FBlock, FTree, FTreeNode, IndexVector, materialize
from repro.exec.factorized import tuples_through
from repro.types import DataType


# -- random f-Tree strategy ------------------------------------------------------


@st.composite
def random_trees(draw) -> FTree:
    """Random trees of depth <= 3, fan-out <= 2, block sizes <= 5."""
    counter = [0]

    def fresh_block(size: int) -> FBlock:
        counter[0] += 1
        values = draw(
            st.lists(st.integers(-5, 5), min_size=size, max_size=size)
        )
        return FBlock([Column(f"a{counter[0]}", DataType.INT64, values)])

    def random_selection(size: int) -> np.ndarray:
        bits = draw(st.lists(st.booleans(), min_size=size, max_size=size))
        return np.asarray(bits, dtype=bool)

    def random_index_vector(parent_size: int, child_size: int) -> IndexVector:
        starts = []
        ends = []
        for _ in range(parent_size):
            if child_size == 0:
                starts.append(0)
                ends.append(0)
                continue
            start = draw(st.integers(0, child_size))
            end = draw(st.integers(start, child_size))
            starts.append(start)
            ends.append(end)
        return IndexVector(np.asarray(starts), np.asarray(ends))

    root_size = draw(st.integers(1, 4))
    tree = FTree.single("root", fresh_block(root_size))
    tree.root.and_selection(random_selection(root_size))

    def grow(node: FTreeNode, depth: int) -> None:
        if depth >= 3:
            return
        for _ in range(draw(st.integers(0, 2))):
            child_size = draw(st.integers(0, 5))
            block = fresh_block(child_size)
            iv = random_index_vector(len(node.block), child_size)
            child = tree.add_child(node, f"n{counter[0]}", block, iv)
            child.and_selection(random_selection(child_size))
            grow(child, depth + 1)

    grow(tree.root, 1)
    return tree


# -- brute-force oracle (paper equations 1 and 2) -----------------------------------


def oracle_tuples(tree: FTree) -> list[tuple]:
    schema = tree.schema

    def induced(node: FTreeNode, i: int) -> list[dict]:
        """R_u^i as a list of attr->value dicts."""
        if not node.selection[i]:
            return []
        own = {
            attr: node.block.column(attr).get(i) for attr in node.block.schema
        }
        partials = [own]
        for child, iv in node.children:
            start, end = iv.range_of(i)
            child_tuples: list[dict] = []
            for j in range(start, end):
                child_tuples.extend(induced(child, j))
            combined = []
            for left in partials:
                for right in child_tuples:
                    combined.append({**left, **right})
            partials = combined
        return partials

    out: list[tuple] = []
    for i in range(len(tree.root.block)):
        for mapping in induced(tree.root, i):
            out.append(tuple(mapping[a] for a in schema))
    return out


# -- properties --------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(random_trees())
def test_enumeration_matches_oracle(tree: FTree):
    assert list(tree.iter_tuples()) == oracle_tuples(tree)


@settings(max_examples=60, deadline=None)
@given(random_trees())
def test_materialization_matches_oracle(tree: FTree):
    assert materialize(tree).to_pylist() == oracle_tuples(tree)


@settings(max_examples=60, deadline=None)
@given(random_trees())
def test_num_tuples_matches_oracle(tree: FTree):
    assert tree.num_tuples() == len(oracle_tuples(tree))


@settings(max_examples=40, deadline=None)
@given(random_trees())
def test_tuples_through_sums_to_total(tree: FTree):
    """Σ_j tuples_through(node)[j] == |R| for every node (weight invariant)."""
    total = tree.num_tuples()
    for node in tree.nodes():
        through = tuples_through(tree, node)
        assert int(through.sum()) == total


@settings(max_examples=40, deadline=None)
@given(random_trees())
def test_selection_is_monotone(tree: FTree):
    """Clearing selection bits can only shrink the relation."""
    before = tree.num_tuples()
    for node in tree.nodes():
        if len(node.block):
            mask = np.ones(len(node.block), dtype=bool)
            mask[0] = False
            node.and_selection(mask)
            break
    assert tree.num_tuples() <= before


@settings(max_examples=30, deadline=None)
@given(random_trees())
def test_projection_consistency(tree: FTree):
    """Projected enumeration equals projecting the full enumeration."""
    schema = tree.schema
    if len(schema) < 2:
        return
    attrs = [schema[-1], schema[0]]
    full = list(tree.iter_tuples())
    expected = [
        (row[schema.index(attrs[0])], row[schema.index(attrs[1])]) for row in full
    ]
    assert list(tree.iter_tuples(attrs)) == expected


# -- seeded adversarial shapes (stdlib random; no hypothesis shrinking) -------------
#
# The fuzz harness relies on stdlib ``random.Random`` being bit-identical
# across platforms, so these round-trips double as its foundation: for each
# seed, build an f-Tree biased hard toward the degenerate shapes that broke
# engines historically — empty unions (parents whose child range is empty),
# zero-row f-Blocks, and single-slot Cartesian products (a width-1 parent
# with several fully-spanning children) — then de-factor and compare against
# the brute-force oracle.


def _adversarial_tree(rng: random.Random) -> FTree:
    """One seeded tree drawn from a distribution of degenerate shapes."""
    counter = [0]

    def block(size: int) -> FBlock:
        counter[0] += 1
        values = [rng.randint(-3, 3) for _ in range(size)]
        return FBlock([Column(f"a{counter[0]}", DataType.INT64, values)])

    def selection(size: int) -> np.ndarray:
        # Bias toward all-kept and all-dropped, the boundary regimes.
        mode = rng.random()
        if mode < 0.4:
            return np.ones(size, dtype=bool)
        if mode < 0.55:
            return np.zeros(size, dtype=bool)
        return np.asarray([rng.random() < 0.6 for _ in range(size)], dtype=bool)

    def index_vector(parent_size: int, child_size: int) -> IndexVector:
        starts, ends = [], []
        for _ in range(parent_size):
            mode = rng.random()
            if child_size == 0 or mode < 0.3:
                # Empty union: this parent slot induces no child tuples.
                start = rng.randint(0, child_size) if child_size else 0
                starts.append(start)
                ends.append(start)
            elif mode < 0.6:
                # Fully spanning: Cartesian with every child slot.
                starts.append(0)
                ends.append(child_size)
            else:
                start = rng.randint(0, child_size)
                starts.append(start)
                ends.append(rng.randint(start, child_size))
        return IndexVector(np.asarray(starts), np.asarray(ends))

    shape = rng.random()
    if shape < 0.3:
        # Single-slot Cartesian product: width-1 root, spanning children.
        tree = FTree.single("root", block(1))
        for _ in range(rng.randint(1, 3)):
            size = rng.randint(0, 4)  # zero-row children stay in play
            iv = IndexVector(np.asarray([0]), np.asarray([size]))
            child = tree.add_child(tree.root, f"n{counter[0]}", block(size), iv)
            child.and_selection(selection(size))
        return tree

    root_size = 0 if shape < 0.4 else rng.randint(1, 4)
    tree = FTree.single("root", block(root_size))
    tree.root.and_selection(selection(root_size))

    def grow(node: FTreeNode, depth: int) -> None:
        if depth >= 4:
            return
        for _ in range(rng.randint(0, 2)):
            child_size = rng.randint(0, 5)
            child = tree.add_child(
                node,
                f"n{counter[0]}",
                block(child_size),
                index_vector(len(node.block), child_size),
            )
            child.and_selection(selection(child_size))
            grow(child, depth + 1)

    grow(tree.root, 1)
    return tree


@pytest.mark.parametrize("seed", range(8))
def test_seeded_adversarial_round_trip(seed):
    """Enumeration, materialization, and counting agree with the oracle on
    120 seeded degenerate trees per seed."""
    rng = random.Random(f"ftree:{seed}")
    for _ in range(120):
        tree = _adversarial_tree(rng)
        expected = oracle_tuples(tree)
        assert list(tree.iter_tuples()) == expected
        assert materialize(tree).to_pylist() == expected
        assert tree.num_tuples() == len(expected)


def test_adversarial_generator_is_deterministic():
    """Same seed -> the same trees -> the same flat relations."""

    def relations(seed):
        rng = random.Random(f"ftree:{seed}")
        return [oracle_tuples(_adversarial_tree(rng)) for _ in range(30)]

    assert relations(3) == relations(3)


def test_zero_row_root_defactors_to_empty():
    tree = FTree.single("root", FBlock([Column("a", DataType.INT64, [])]))
    assert list(tree.iter_tuples()) == []
    assert materialize(tree).to_pylist() == []
    assert tree.num_tuples() == 0


def test_empty_union_annihilates_slot():
    """A parent slot whose child range is empty contributes no tuples."""
    tree = FTree.single("root", FBlock([Column("a", DataType.INT64, [1, 2])]))
    child_block = FBlock([Column("b", DataType.INT64, [10, 20])])
    # Slot 0 spans both children; slot 1's union is empty.
    iv = IndexVector(np.asarray([0, 2]), np.asarray([2, 2]))
    tree.add_child(tree.root, "c", child_block, iv)
    assert list(tree.iter_tuples()) == [(1, 10), (1, 20)]
    assert tree.num_tuples() == 2


def test_single_slot_cartesian_product():
    """Width-1 parent with two spanning children multiplies out exactly."""
    tree = FTree.single("root", FBlock([Column("a", DataType.INT64, [7])]))
    left = FBlock([Column("b", DataType.INT64, [1, 2, 3])])
    right = FBlock([Column("c", DataType.INT64, [4, 5])])
    span = lambda n: IndexVector(np.asarray([0]), np.asarray([n]))  # noqa: E731
    tree.add_child(tree.root, "l", left, span(3))
    tree.add_child(tree.root, "r", right, span(2))
    assert tree.num_tuples() == 6
    assert materialize(tree).to_pylist() == oracle_tuples(tree)


@settings(max_examples=20, deadline=None)
@given(random_trees(), st.integers(0, 5))
def test_enumeration_prefix_equals_materialized_prefix(tree: FTree, n: int):
    """Taking n tuples from the generator matches the first n flat rows
    (the Limit-via-Lemma-4.4 path)."""
    gen = tree.iter_tuples()
    prefix = []
    for _ in range(n):
        try:
            prefix.append(next(gen))
        except StopIteration:
            break
    assert prefix == materialize(tree).to_pylist()[: len(prefix)]
