"""Property tests: the factorized aggregation fast path (index-vector
counting with tuple-multiplicity weights) must agree with aggregating the
fully de-factored relation."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import Column, FBlock, FTree, IndexVector, materialize
from repro.exec.base import ExecStats, ExecutionContext
from repro.exec.factorized import aggregate_on_node
from repro.exec.flat import flat_aggregate
from repro.plan import AggSpec
from repro.types import DataType


@st.composite
def two_level_trees(draw) -> FTree:
    """root(group, value) -> child(payload): the aggregation shape."""
    n_root = draw(st.integers(1, 6))
    groups = draw(st.lists(st.integers(0, 2), min_size=n_root, max_size=n_root))
    values = draw(st.lists(st.integers(-5, 5), min_size=n_root, max_size=n_root))
    root = FBlock(
        [Column("g", DataType.INT64, groups), Column("v", DataType.INT64, values)]
    )
    tree = FTree.single("r", root)
    tree.root.and_selection(
        np.asarray(
            draw(st.lists(st.booleans(), min_size=n_root, max_size=n_root)), dtype=bool
        )
    )
    n_child = draw(st.integers(0, 8))
    child = FBlock([Column("c", DataType.INT64, list(range(n_child)))])
    starts, ends = [], []
    for _ in range(n_root):
        start = draw(st.integers(0, n_child))
        starts.append(start)
        ends.append(draw(st.integers(start, n_child)))
    node = tree.add_child(tree.root, "c", child, IndexVector(np.asarray(starts), np.asarray(ends)))
    if n_child:
        node.and_selection(
            np.asarray(
                draw(st.lists(st.booleans(), min_size=n_child, max_size=n_child)),
                dtype=bool,
            )
        )
    return tree


AGGS = [
    AggSpec("cnt", "count"),
    AggSpec("total", "sum", "v"),
    AggSpec("lo", "min", "v"),
    AggSpec("hi", "max", "v"),
    AggSpec("mean", "avg", "v"),
    AggSpec("distinct", "count_distinct", "v"),
]


def oracle(tree: FTree, group_by: list[str], aggs: list[AggSpec]):
    """Aggregate the fully materialized relation with the flat operator."""
    flat = materialize(tree)
    ctx = ExecutionContext(view=None, params={}, stats=ExecStats())  # type: ignore[arg-type]
    return flat_aggregate(flat, group_by, aggs, ctx)


def as_row_set(block) -> set:
    out = set()
    for row in block.to_pylist():
        out.add(tuple(round(v, 9) if isinstance(v, float) else v for v in row))
    return out


@settings(max_examples=80, deadline=None)
@given(two_level_trees())
def test_grouped_aggregates_match_flat_oracle(tree: FTree):
    fast = aggregate_on_node(tree, tree.root, ["g"], AGGS)
    expected = oracle(tree, ["g"], AGGS)
    assert as_row_set(fast) == as_row_set(expected)


@settings(max_examples=60, deadline=None)
@given(two_level_trees())
def test_global_count_matches_num_tuples(tree: FTree):
    fast = aggregate_on_node(tree, tree.root, [], [AggSpec("n", "count")])
    assert fast.to_pylist() == [(tree.num_tuples(),)]


@settings(max_examples=60, deadline=None)
@given(two_level_trees())
def test_count_on_child_node_matches_oracle(tree: FTree):
    node = tree.node_of("c")
    fast = aggregate_on_node(tree, node, ["c"], [AggSpec("n", "count")])
    expected = oracle(tree, ["c"], [AggSpec("n", "count")])
    assert as_row_set(fast) == as_row_set(expected)
