"""Tests for eager columns, lazy pointer columns, and f-Blocks."""

import numpy as np
import pytest

from repro.core.column import Column, string_payload_bytes
from repro.core.fblock import FBlock
from repro.core.lazy import LazyNeighborColumn
from repro.errors import FactorizationError
from repro.types import DataType


class TestColumn:
    def test_values(self):
        col = Column("x", DataType.INT64, [1, 2, 3])
        assert col.values().tolist() == [1, 2, 3]

    def test_get_returns_python_scalar(self):
        col = Column("x", DataType.INT64, [7])
        value = col.get(0)
        assert value == 7 and isinstance(value, int)

    def test_take(self):
        col = Column("x", DataType.INT64, [1, 2, 3])
        assert col.take(np.asarray([2, 0])).values().tolist() == [3, 1]

    def test_renamed(self):
        col = Column("x", DataType.INT64, [1]).renamed("y")
        assert col.name == "y"

    def test_nbytes_numeric(self):
        col = Column("x", DataType.INT64, np.arange(10))
        assert col.nbytes == 80

    def test_nbytes_string_includes_payload(self):
        col = Column("x", DataType.STRING, np.asarray(["ab", "cdef"], dtype=object))
        assert col.nbytes == 2 * 8 + 6

    def test_string_payload_none_safe(self):
        values = np.asarray(["ab", None], dtype=object)
        assert string_payload_bytes(values) == 2

    def test_from_values_infers_dtype(self):
        assert Column.from_values("x", [1.5]).dtype is DataType.FLOAT64

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            Column("x", DataType.INT64, np.zeros((2, 2), dtype=np.int64))


class TestLazyNeighborColumn:
    @pytest.fixture
    def base(self):
        return np.arange(100, dtype=np.int64)

    def test_values_concatenates_slices(self, base):
        col = LazyNeighborColumn("n", base, np.asarray([10, 50]), np.asarray([3, 2]))
        assert col.values().tolist() == [10, 11, 12, 50, 51]

    def test_length(self, base):
        col = LazyNeighborColumn("n", base, np.asarray([0, 5]), np.asarray([2, 4]))
        assert len(col) == 6

    def test_nbytes_before_materialization(self, base):
        col = LazyNeighborColumn("n", base, np.asarray([0, 5, 9]), np.asarray([10, 10, 10]))
        assert col.nbytes == 3 * 16  # pointer+length per reference
        assert not col.is_materialized

    def test_nbytes_after_materialization(self, base):
        col = LazyNeighborColumn("n", base, np.asarray([0]), np.asarray([10]))
        col.values()
        assert col.is_materialized
        assert col.nbytes == 80

    def test_values_cached(self, base):
        col = LazyNeighborColumn("n", base, np.asarray([0]), np.asarray([3]))
        assert col.values() is col.values()

    def test_get_without_materialization(self, base):
        col = LazyNeighborColumn("n", base, np.asarray([10, 50]), np.asarray([3, 2]))
        assert col.get(0) == 10
        assert col.get(3) == 50
        assert col.get(4) == 51
        assert not col.is_materialized

    def test_empty(self):
        col = LazyNeighborColumn.empty("n")
        assert len(col) == 0
        assert col.values().tolist() == []

    def test_zero_length_references_skipped(self, base):
        col = LazyNeighborColumn("n", base, np.asarray([5, 0, 20]), np.asarray([1, 0, 2]))
        assert col.values().tolist() == [5, 20, 21]


class TestFBlock:
    def test_schema_in_order(self):
        block = FBlock([Column("a", DataType.INT64, [1]), Column("b", DataType.INT64, [2])])
        assert block.schema == ["a", "b"]

    def test_cardinality_restriction(self):
        block = FBlock([Column("a", DataType.INT64, [1, 2])])
        with pytest.raises(FactorizationError):
            block.add_column(Column("b", DataType.INT64, [1]))

    def test_duplicate_column_rejected(self):
        block = FBlock([Column("a", DataType.INT64, [1])])
        with pytest.raises(FactorizationError):
            block.add_column(Column("a", DataType.INT64, [2]))

    def test_tuple_at(self):
        block = FBlock.from_arrays(personId=[1, 2, 3], firstName=["Jan", "Rahul", "Wei"])
        assert block.tuple_at(1) == (2, "Rahul")

    def test_tuple_at_out_of_range(self):
        block = FBlock.from_arrays(a=[1])
        with pytest.raises(FactorizationError):
            block.tuple_at(5)

    def test_tuples_range(self):
        block = FBlock.from_arrays(a=[1, 2, 3])
        assert block.tuples(1, 3) == [(2,), (3,)]

    def test_mixed_lazy_and_eager(self):
        base = np.arange(10, dtype=np.int64)
        lazy = LazyNeighborColumn("n", base, np.asarray([0]), np.asarray([3]))
        block = FBlock([lazy])
        block.add_column(Column("x", DataType.INT64, [7, 8, 9]))
        assert block.tuple_at(2) == (2, 9)

    def test_replace_column(self):
        block = FBlock([Column("a", DataType.INT64, [1, 2])])
        block.replace_column(Column("a", DataType.INT64, [3, 4]))
        assert block.column("a").values().tolist() == [3, 4]

    def test_replace_missing_rejected(self):
        block = FBlock()
        with pytest.raises(FactorizationError):
            block.replace_column(Column("a", DataType.INT64, []))

    def test_nbytes(self):
        block = FBlock([Column("a", DataType.INT64, np.arange(4))])
        assert block.nbytes == 32
