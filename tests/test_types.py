"""Tests for the value/type system."""

import numpy as np
import pytest

from repro.types import (
    DataType,
    MILLIS_PER_DAY,
    NULL_INT,
    date_millis,
    infer_data_type,
    is_null,
    millis_to_datetime,
    timestamp_millis,
)


class TestDataType:
    def test_numpy_dtype_int64(self):
        assert DataType.INT64.numpy_dtype == np.dtype(np.int64)

    def test_numpy_dtype_string_is_object(self):
        assert DataType.STRING.numpy_dtype == np.dtype(object)

    def test_date_is_integer_backed(self):
        assert DataType.DATE.is_integer_backed

    def test_timestamp_is_integer_backed(self):
        assert DataType.TIMESTAMP.is_integer_backed

    def test_float_not_integer_backed(self):
        assert not DataType.FLOAT64.is_integer_backed

    def test_fill_value_int_is_legacy_sentinel(self):
        # The deprecated null_value() shim delegates to fill_value().
        assert DataType.INT64.fill_value() == NULL_INT
        assert DataType.INT64.null_value() == NULL_INT

    def test_null_value_string(self):
        assert DataType.STRING.null_value() is None

    def test_null_value_float_is_nan(self):
        value = DataType.FLOAT64.null_value()
        assert value != value

    def test_null_value_bool(self):
        assert DataType.BOOL.null_value() is False


class TestDates:
    def test_epoch(self):
        assert date_millis(1970, 1, 1) == 0

    def test_one_day(self):
        assert date_millis(1970, 1, 2) == MILLIS_PER_DAY

    def test_timestamp_with_time(self):
        assert timestamp_millis(1970, 1, 1, 0, 0, 1) == 1000

    def test_round_trip(self):
        millis = timestamp_millis(2012, 6, 15, 12, 30, 45)
        dt = millis_to_datetime(millis)
        assert (dt.year, dt.month, dt.day, dt.hour, dt.minute, dt.second) == (
            2012, 6, 15, 12, 30, 45,
        )

    def test_ordering(self):
        assert date_millis(2010, 1, 1) < date_millis(2012, 12, 31)


class TestInference:
    def test_bool_before_int(self):
        assert infer_data_type(True) is DataType.BOOL

    def test_int(self):
        assert infer_data_type(7) is DataType.INT64

    def test_numpy_int(self):
        assert infer_data_type(np.int64(7)) is DataType.INT64

    def test_float(self):
        assert infer_data_type(1.5) is DataType.FLOAT64

    def test_string(self):
        assert infer_data_type("x") is DataType.STRING

    def test_unknown_raises(self):
        with pytest.raises(TypeError):
            infer_data_type([1, 2])


class TestIsNull:
    def test_none(self):
        assert is_null(None)

    def test_nan(self):
        assert is_null(float("nan"))

    def test_int_sentinel_value_is_data(self):
        # Regression for the sentinel bug class: int64-min is legitimate
        # data; only a cleared validity bit (or None/NaN) marks NULL.
        assert not is_null(NULL_INT)
        assert not is_null(NULL_INT, DataType.INT64)

    def test_explicit_validity_wins(self):
        assert is_null(7, valid=False)
        assert not is_null(NULL_INT, valid=True)

    def test_regular_int(self):
        assert not is_null(0)

    def test_regular_string(self):
        assert not is_null("")

    def test_sentinel_with_noninteger_dtype(self):
        assert not is_null(NULL_INT, DataType.STRING)
