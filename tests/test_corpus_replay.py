"""Replay every minimized fuzz repro in ``tests/corpus/`` (tier-1, forever).

Each entry is a self-contained (graph spec, update batches, query) triple
that once made two engines disagree.  The bug it captured is fixed, so
replaying the entry on all engines must come back clean; any mismatch is
a regression of a specific, already-understood failure.  Entries are
content-addressed, so the corpus only grows — ``repro fuzz --corpus
tests/corpus`` archives new finds idempotently.

Run just these with ``pytest -m corpus``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.testkit import load_entries, replay_entry

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"

ENTRIES = load_entries(CORPUS_DIR)


def test_corpus_is_not_empty():
    """The corpus ships with the fused-aggregate NULL repros at minimum."""
    assert ENTRIES, f"no corpus entries found under {CORPUS_DIR}"


@pytest.mark.corpus
@pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
def test_corpus_entry_replays_clean(entry):
    mismatches = replay_entry(entry)
    assert mismatches == [], (
        f"{entry.name} regressed (captured: {entry.note!r}): "
        + "; ".join(str(m) for m in mismatches)
    )


@pytest.mark.corpus
@pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
def test_corpus_entry_is_well_formed(entry):
    assert entry.name.startswith("fuzz-")
    assert entry.signature, "entries must record the failure they captured"
    assert entry.query.plan is not None or entry.query.cypher is not None
    assert entry.spec.total_vertices() >= 0
