"""Shared fixtures: a hand-built micro social graph and the SF1 dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DataType,
    EdgeLabelDef,
    EngineConfig,
    GES,
    GraphSchema,
    GraphStore,
    PropertyDef,
    VertexLabelDef,
)
from repro.baselines import VolcanoEngine
from repro.ldbc import generate


def build_micro_schema() -> GraphSchema:
    """Person/Message/Tag schema small enough to reason about by hand."""
    schema = GraphSchema()
    schema.add_vertex_label(
        VertexLabelDef(
            "Person",
            [
                PropertyDef("id", DataType.INT64),
                PropertyDef("firstName", DataType.STRING),
                PropertyDef("age", DataType.INT64),
            ],
            primary_key="id",
        )
    )
    schema.add_vertex_label(
        VertexLabelDef(
            "Message",
            [
                PropertyDef("id", DataType.INT64),
                PropertyDef("length", DataType.INT64),
                PropertyDef("score", DataType.FLOAT64),
            ],
            primary_key="id",
        )
    )
    schema.add_vertex_label(
        VertexLabelDef(
            "Tag",
            [PropertyDef("id", DataType.INT64), PropertyDef("name", DataType.STRING)],
            primary_key="id",
        )
    )
    schema.add_edge_label(
        EdgeLabelDef(
            "KNOWS", "Person", "Person", [PropertyDef("since", DataType.INT64)]
        )
    )
    schema.add_edge_label(EdgeLabelDef("HAS_CREATOR", "Message", "Person"))
    schema.add_edge_label(EdgeLabelDef("HAS_TAG", "Message", "Tag"))
    return schema


def build_micro_store() -> GraphStore:
    """5 persons, 6 messages, 3 tags; KNOWS is symmetric.

    Topology (KNOWS): 0-1, 0-2, 1-3, 2-4.
    Creators: m0->p1, m1->p2, m2->p2, m3->p3, m4->p4, m5->p3.
    Tags: m0->t0, m1->t0, m1->t1, m3->t2, m5->t1.
    """
    store = GraphStore(build_micro_schema())
    store.bulk_load_vertices(
        "Person",
        {
            "id": np.arange(5),
            "firstName": np.asarray(["A", "B", "C", "B", "E"], dtype=object),
            "age": np.asarray([30, 25, 35, 25, 40]),
        },
    )
    store.bulk_load_vertices(
        "Message",
        {
            "id": np.arange(100, 106),
            "length": np.asarray([140, 123, 120, 200, 90, 130]),
            "score": np.asarray([1.0, 2.5, 0.5, 4.0, 3.5, 2.0]),
        },
    )
    store.bulk_load_vertices(
        "Tag",
        {"id": np.arange(200, 203), "name": np.asarray(["x", "y", "z"], dtype=object)},
    )
    knows_src = np.asarray([0, 0, 1, 2, 1, 2, 3, 4])
    knows_dst = np.asarray([1, 2, 3, 4, 0, 0, 1, 2])
    since = np.asarray([10, 20, 30, 40, 10, 20, 30, 40])
    store.bulk_load_edges(
        "KNOWS", "Person", "Person", knows_src, knows_dst, {"since": since}
    )
    store.bulk_load_edges(
        "HAS_CREATOR",
        "Message",
        "Person",
        np.arange(6),
        np.asarray([1, 2, 2, 3, 4, 3]),
    )
    store.bulk_load_edges(
        "HAS_TAG",
        "Message",
        "Tag",
        np.asarray([0, 1, 1, 3, 5]),
        np.asarray([0, 0, 1, 2, 1]),
    )
    return store


@pytest.fixture
def micro_schema() -> GraphSchema:
    return build_micro_schema()


@pytest.fixture
def micro_store() -> GraphStore:
    return build_micro_store()


@pytest.fixture
def micro_engines(micro_store):
    """All four engines over one micro store."""
    return {
        "GES": GES(micro_store, EngineConfig.ges()),
        "GES_f": GES(micro_store, EngineConfig.ges_f()),
        "GES_f*": GES(micro_store, EngineConfig.ges_f_star()),
        "Volcano": VolcanoEngine(micro_store),
    }


@pytest.fixture(scope="session")
def sf1_dataset():
    """The deterministic SF1 LDBC dataset (read-only across tests)."""
    return generate("SF1", seed=42)
