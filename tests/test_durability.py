"""The durability subsystem end-to-end: WAL, checkpoints, recovery, fsck.

Complements :mod:`tests.test_durability_wal` (adversarial byte-level WAL
damage) with the engine-facing lifecycle — ``GES.open`` over fresh and
existing directories, commit logging, checkpoint/prune, the kill -9 crash
harness, and the ``repro fsck`` CLI verb.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro import GES, EngineConfig
from repro.durability import DurabilityManager, fsck, init_db, recover
from repro.durability.checkpoint import list_checkpoints, wal_dir
from repro.durability.wal import iter_segments, scan_segment
from repro.errors import StorageError
from repro.obs.metrics import REGISTRY
from repro.testkit import CrashConfig, run_crash, store_digest

from .conftest import build_micro_store


def _config(**overrides) -> EngineConfig:
    defaults = dict(metrics=False, flight_recorder=0, durability="fsync")
    defaults.update(overrides)
    return EngineConfig.ges(**defaults)


_NEXT_ID = iter(range(1000, 100000))


def _commit_person(engine, name: str) -> int:
    txn = engine.transaction()
    txn.add_vertex(
        "Person", {"id": next(_NEXT_ID), "firstName": name, "age": 1}
    )
    return txn.commit()


@pytest.fixture
def db(tmp_path) -> Path:
    return tmp_path / "db"


class TestLifecycle:
    def test_open_fresh_requires_schema(self, db):
        with pytest.raises(StorageError, match="schema"):
            GES.open(db, config=_config())

    def test_open_creates_marker_checkpoint_and_segment(self, db):
        engine = GES.open(db, config=_config(), schema=build_micro_store())
        try:
            assert (db / "GESDB.json").exists()
            assert [i.epoch for i in list_checkpoints(db)] == [0]
            assert [s.name for s in iter_segments(wal_dir(db))] == [
                "wal-000000000000.log"
            ]
            assert engine.describe()["durability"]["mode"] == "fsync"
        finally:
            engine.close()

    def test_commit_survives_reopen(self, db):
        engine = GES.open(db, config=_config(), schema=build_micro_store())
        v1 = _commit_person(engine, "walter")
        v2 = _commit_person(engine, "jesse")
        engine.close()

        reopened = GES.open(db, config=_config())
        try:
            assert reopened.txn_manager.versions.current() == v2
            assert reopened.recovery.replayed == 2
            table = reopened.store.table("Person")
            names = {table.column("firstName").view()[i] for i in range(len(table))}
            assert {"walter", "jesse"} <= names
            # The write path keeps working, from the next version.
            assert _commit_person(reopened, "gus") == v2 + 1
            del v1
        finally:
            reopened.close()

    def test_checkpoint_bounds_replay(self, db):
        engine = GES.open(db, config=_config(), schema=build_micro_store())
        for name in ("a", "b", "c"):
            _commit_person(engine, name)
        info = engine.checkpoint()
        assert info.epoch == 3
        _commit_person(engine, "d")
        engine.close()

        reopened = GES.open(db, config=_config())
        try:
            assert reopened.recovery.checkpoint.epoch == 3
            assert reopened.recovery.replayed == 1  # only "d"
            assert reopened.txn_manager.versions.current() == 4
        finally:
            reopened.close()

    def test_checkpoint_retention_prunes(self, db):
        engine = GES.open(
            db, config=_config(checkpoint_keep=2), schema=build_micro_store()
        )
        try:
            for round_ in range(4):
                _commit_person(engine, f"p{round_}")
                engine.checkpoint()
            epochs = [i.epoch for i in list_checkpoints(db)]
            assert len(epochs) == 2 and epochs == sorted(epochs)
            floor = epochs[0]
            for segment in iter_segments(wal_dir(db)):
                assert scan_segment(segment).epoch >= floor
        finally:
            engine.close()

    def test_checkpoint_at_same_version_is_noop(self, db):
        engine = GES.open(db, config=_config(), schema=build_micro_store())
        try:
            _commit_person(engine, "solo")
            first = engine.checkpoint()
            again = engine.checkpoint()
            assert first.epoch == again.epoch == 1
            assert len(list_checkpoints(db)) <= 2
        finally:
            engine.close()

    def test_batch_mode_flushes_on_close(self, db):
        engine = GES.open(
            db,
            config=_config(durability="batch", wal_batch_every=64),
            schema=build_micro_store(),
        )
        for name in ("x", "y", "z"):
            _commit_person(engine, name)
        engine.close()  # close syncs: everything acked-at-close is durable
        reopened = GES.open(db, config=_config(durability="batch"))
        try:
            assert reopened.txn_manager.versions.current() == 3
        finally:
            reopened.close()

    def test_unknown_mode_is_typed(self, db):
        with pytest.raises(StorageError, match="durability mode"):
            GES.open(
                db, config=_config(durability="yolo"), schema=build_micro_store()
            )

    def test_non_durable_engine_refuses_checkpoint(self):
        engine = GES(build_micro_store(), EngineConfig.ges(metrics=False))
        with pytest.raises(StorageError, match="durability"):
            engine.checkpoint()

    def test_init_db_refuses_existing(self, db):
        init_db(db, build_micro_store())
        with pytest.raises(StorageError, match="already"):
            init_db(db, build_micro_store())

    def test_recovery_equals_live_state(self, db):
        engine = GES.open(db, config=_config(), schema=build_micro_store())
        for name in ("a", "b"):
            _commit_person(engine, name)
        engine.checkpoint()
        _commit_person(engine, "c")
        live = store_digest(engine.store)
        engine.close()
        result = recover(db)
        assert store_digest(result.store) == live

    def test_wal_metrics_move(self, db):
        counter = REGISTRY.counter(
            "ges_wal_appends_total", "Commit records appended to the WAL."
        )
        before = counter.value
        engine = GES.open(db, config=_config(), schema=build_micro_store())
        try:
            _commit_person(engine, "metered")
        finally:
            engine.close()
        assert counter.value == before + 1


class TestRecoveryEdges:
    def test_recover_non_database_is_typed(self, tmp_path):
        with pytest.raises(StorageError, match="not a GES database"):
            recover(tmp_path)

    def test_invalid_newest_checkpoint_falls_back(self, db):
        engine = GES.open(db, config=_config(), schema=build_micro_store())
        _commit_person(engine, "early")
        engine.checkpoint()
        engine.close()
        newest = list_checkpoints(db)[-1]
        victim = next(newest.path.glob("vertices_*.npz"))
        victim.write_bytes(b"rotten")
        result = recover(db)
        assert result.checkpoint.epoch == 0
        assert newest.path.name in result.invalid_checkpoints
        assert result.version == 1  # "early" came back via WAL replay

    def test_all_checkpoints_invalid_is_fatal(self, db):
        init_db(db, build_micro_store())
        for info in list_checkpoints(db):
            (info.path / "MANIFEST.json").unlink()
        with pytest.raises(StorageError, match="no valid checkpoint"):
            recover(db)

    def test_stray_temp_dir_is_swept(self, db):
        init_db(db, build_micro_store())
        stray = db / "checkpoints" / ".ckpt-000000000009.tmp-1"
        stray.mkdir()
        (stray / "junk").write_text("x")
        result = recover(db)
        assert result.swept == [stray.name]
        assert not stray.exists()

    def test_attach_recreates_missing_segment(self, db):
        engine = GES.open(db, config=_config(), schema=build_micro_store())
        _commit_person(engine, "one")
        engine.checkpoint()
        engine.close()
        # Simulate a kill between checkpoint rename and segment switch by
        # deleting the new segment: attach must cut a fresh one.
        for segment in list(iter_segments(wal_dir(db))):
            segment.unlink()
        result = recover(db)
        manager = DurabilityManager.attach(db, result)
        try:
            assert manager.writer.epoch == result.checkpoint.epoch
        finally:
            manager.close()


class TestFsck:
    def test_clean_database(self, db):
        engine = GES.open(db, config=_config(), schema=build_micro_store())
        _commit_person(engine, "ok")
        engine.close()
        report = fsck(db)
        assert report.ok
        assert [c["status"] for c in report.checkpoints] == ["ok"]
        assert report.segments[-1]["records"] == 1
        assert report.to_dict()["ok"] is True

    def test_not_a_database(self, tmp_path):
        report = fsck(tmp_path)
        assert not report.ok

    def test_flags_stray_temp_dir_and_orphan(self, db):
        init_db(db, build_micro_store())
        (db / "checkpoints" / ".ckpt-000000000005.tmp-7").mkdir()
        (wal_dir(db) / "wal-000000000007.log.orphan").write_bytes(b"")
        problems = "\n".join(fsck(db).problems)
        assert "stray checkpoint temp dir" in problems
        assert "orphaned segment" in problems

    def test_flags_invalid_checkpoint(self, db):
        init_db(db, build_micro_store())
        info = list_checkpoints(db)[0]
        (info.path / "MANIFEST.json").unlink()
        report = fsck(db)
        assert not report.ok
        assert "no valid checkpoint" in "\n".join(report.problems)


class TestCli:
    def _run(self, *argv: str):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent.parent,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )

    def test_fsck_clean_exit_zero(self, db):
        engine = GES.open(db, config=_config(), schema=build_micro_store())
        _commit_person(engine, "cli")
        engine.close()
        proc = self._run("fsck", str(db))
        assert proc.returncode == 0, proc.stderr
        assert "ok" in proc.stdout

    def test_fsck_json_reports_tear(self, db):
        engine = GES.open(db, config=_config(), schema=build_micro_store())
        _commit_person(engine, "cli")
        engine.close()
        segment = list(iter_segments(wal_dir(db)))[-1]
        segment.write_bytes(segment.read_bytes() + b"\x2a\x00\x00\x00garbage")
        proc = self._run("fsck", str(db), "--format", "json")
        assert proc.returncode == 1
        report = json.loads(proc.stdout)
        assert report["ok"] is False
        assert any("torn at byte" in p for p in report["problems"])


@pytest.mark.slow
class TestCrashHarness:
    """One kill -9 run per protocol family; ``repro chaos --crash-runs``
    sweeps the full site matrix across seeds."""

    @pytest.mark.parametrize(
        "site", ["commit.wal_fsync", "checkpoint.tmp_written"]
    )
    def test_kill_and_recover(self, site):
        report = run_crash(
            CrashConfig(seed=11, batches=8, checkpoint_every=3, kill_point=site)
        )
        assert report.killed, report.summary()
        assert report.passed, report.summary()

    def test_batch_mode_bounded_loss(self):
        report = run_crash(
            CrashConfig(
                seed=12,
                batches=8,
                checkpoint_every=3,
                kill_point="commit.applied",
                durability="batch",
            )
        )
        assert report.killed, report.summary()
        assert report.passed, report.summary()


class TestAtomicSnapshots:
    """Satellite: ``save_graph`` is atomic and manifest-verified."""

    def test_save_leaves_no_temp_on_fault(self, tmp_path):
        from repro.errors import TransientError
        from repro.resilience.faults import FaultPlan, FaultRule, fault_scope
        from repro.storage.io import save_graph

        store = build_micro_store()
        plan = FaultPlan(rules=(FaultRule(site="snapshot.save", every_nth=1),))
        with fault_scope(plan):
            with pytest.raises(TransientError):
                save_graph(store, tmp_path / "snap")
        assert list(tmp_path.iterdir()) == []

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        from repro.storage.io import load_graph, read_manifest, save_graph

        store = build_micro_store()
        target = tmp_path / "snap"
        save_graph(store, target)
        first = read_manifest(target)
        save_graph(store, target)  # overwrite an existing snapshot in place
        assert read_manifest(target)["files"].keys() == first["files"].keys()
        assert not [
            m for m in tmp_path.iterdir() if m.name.startswith(".")
        ], "no temp/aside dirs survive"
        load_graph(target)

    def test_legacy_snapshot_without_manifest_loads(self, tmp_path):
        from repro.storage.io import MANIFEST_NAME, load_graph, save_graph

        store = build_micro_store()
        target = tmp_path / "snap"
        save_graph(store, target)
        # Rewrite as a v2-era snapshot: no manifest, format stamp 2.
        (target / MANIFEST_NAME).unlink()
        schema_file = target / "schema.json"
        raw = json.loads(schema_file.read_text())
        raw["format"] = 2
        schema_file.write_text(json.dumps(raw))
        loaded = load_graph(target)
        assert store_digest(loaded) == store_digest(store)

    def test_v3_without_manifest_is_torn(self, tmp_path):
        from repro.storage.io import MANIFEST_NAME, load_graph, save_graph

        store = build_micro_store()
        target = tmp_path / "snap"
        save_graph(store, target)
        (target / MANIFEST_NAME).unlink()
        with pytest.raises(StorageError, match="torn snapshot"):
            load_graph(target)

    def test_mixed_snapshot_rejected(self, tmp_path):
        from repro.storage.io import load_graph, save_graph

        store = build_micro_store()
        target = tmp_path / "snap"
        save_graph(store, target)
        other = tmp_path / "other"
        save_graph(store, other)
        shutil.copy(other / "vertices_Tag.npz", target / "vertices_Extra.npz")
        with pytest.raises(StorageError, match="mixed snapshot"):
            load_graph(target)
