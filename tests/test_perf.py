"""Tests for the continuous-performance substrate (repro.perf).

The decisive pair mirrors the regression gate's contract: two records of
the same pinned workload on unchanged code must compare "unchanged" on
every (variant, query) cell, while a deliberately injected 2x operator
slowdown — a real busy-wait in the executor, not doctored numbers — must
come back "regressed" with the affected query named.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf import (
    WORKLOADS,
    TrajectoryError,
    append_record,
    compare_trajectory,
    load_trajectory,
    record_run,
    render_report,
    validate_record,
)
from repro.perf.gate import GateReport, compare_records, render_history
from repro.perf.workload import MaterializedWorkload, materialize


# -- one shared smoke recording session ------------------------------------------
#
# Recording is ~1s per record; the module records twice clean + once with
# the injected slowdown and every gate test reads from those.


@pytest.fixture(scope="module")
def smoke_records():
    clean_a = record_run("smoke")
    clean_b = record_run("smoke")
    slowed = record_run("smoke", inject_slowdowns={"Expand": 2.0})
    return clean_a, clean_b, slowed


# -- workload pinning ------------------------------------------------------------


class TestWorkloadPinning:
    def test_materialize_is_deterministic(self):
        spec = WORKLOADS["smoke"]
        a: MaterializedWorkload = materialize(spec)
        b: MaterializedWorkload = materialize(spec)
        assert a.read_params == b.read_params
        assert a.update_params == b.update_params

    def test_every_variant_gets_its_own_dataset(self):
        work = materialize(WORKLOADS["smoke"])
        stores = {id(ds.store) for ds in work.datasets.values()}
        assert len(stores) == len(WORKLOADS["smoke"].variants)

    def test_update_slots_cover_warmup_and_repeats(self):
        spec = WORKLOADS["smoke"]
        work = materialize(spec)
        for query in spec.update_queries:
            assert len(work.update_params[query]) == (
                (spec.warmup + spec.repeats) * spec.draws
            )
            # Fresh-id draws must not collide across slots.
            ids = [
                json.dumps(p, sort_keys=True, default=str)
                for p in work.update_params[query]
            ]
            assert len(set(ids)) == len(ids)

    def test_updates_skip_volcano(self):
        spec = WORKLOADS["smoke"]
        assert "Volcano" in spec.variants_for("IC1")
        assert "Volcano" not in spec.variants_for("IU1")

    def test_identity_round_trips_through_json(self):
        identity = WORKLOADS["full"].identity()
        assert json.loads(json.dumps(identity)) == identity


# -- the recorder ----------------------------------------------------------------


class TestRecorder:
    def test_record_is_schema_valid(self, smoke_records):
        clean_a, _, slowed = smoke_records
        validate_record(clean_a)
        validate_record(slowed)

    def test_record_shape(self, smoke_records):
        record = smoke_records[0]
        spec = WORKLOADS["smoke"]
        assert record["workload"] == spec.identity()
        assert set(record["variants"]) == set(spec.variants)
        for query in spec.read_queries:
            for variant in spec.variants:
                stats = record["variants"][variant]["queries"][query]
                assert stats["samples"] == spec.samples_per_query
                assert stats["p50_ms"] > 0
        # Updates measured on the GES variants only.
        assert "IU1" in record["variants"]["GES"]["queries"]
        assert "IU1" not in record["variants"]["Volcano"]["queries"]

    def test_bookkeeping_per_variant(self, smoke_records):
        record = smoke_records[0]
        ges = record["variants"]["GES_f*"]
        assert ges["ops_per_second"] > 0
        assert 0 <= ges["plan_cache_hit_rate"] <= 1
        assert ges["compression_ratio"] is not None
        assert record["variants"]["Volcano"]["plan_cache_hit_rate"] is None

    def test_injection_is_recorded_into_the_entry(self, smoke_records):
        _, _, slowed = smoke_records
        assert slowed["injected_slowdowns"] == {"Expand": 2.0}
        assert smoke_records[0]["injected_slowdowns"] == {}

    def test_machine_fingerprint_is_stable(self):
        from repro.perf import machine_fingerprint

        assert (
            machine_fingerprint()["fingerprint"]
            == machine_fingerprint()["fingerprint"]
        )


# -- the gate, on real measurements ----------------------------------------------


class TestGateOnRealRuns:
    def test_unchanged_code_compares_unchanged_everywhere(self, smoke_records):
        clean_a, clean_b, _ = smoke_records
        report = compare_records(clean_b, [clean_a])
        assert not report.has_regressions
        offenders = [v for v in report.verdicts if v.verdict != "unchanged"]
        assert offenders == [], [str(v) for v in offenders]

    def test_injected_slowdown_is_flagged_with_query_named(self, smoke_records):
        clean_a, clean_b, slowed = smoke_records
        report = compare_records(slowed, [clean_a, clean_b])
        assert report.has_regressions
        regressed = report.of("regressed")
        # The busy-wait hits Expand, so Expand-heavy queries must be named.
        assert {v.query for v in regressed} & {"IC1", "IC2", "IC5", "IC9"}
        for verdict in regressed:
            assert verdict.ratio > 1 + verdict.band
            assert verdict.query in str(verdict)
        assert any("injected slowdowns" in note for note in report.notes)


# -- the gate, on synthetic records ----------------------------------------------


def _synthetic(p50: float, mad: float = 0.0, name: str = "smoke", version: int = 1):
    """A minimal gate-shaped record with one cell (GES/IC1)."""
    return {
        "workload": {"name": name, "version": version, "scale": "SF1"},
        "machine": {"fingerprint": "feedface00000000"},
        "injected_slowdowns": {},
        "variants": {
            "GES": {
                "queries": {
                    "IC1": {
                        "samples": 6,
                        "p50_ms": p50,
                        "p95_ms": p50,
                        "mean_ms": p50,
                        "mad_ms": mad,
                    }
                }
            }
        },
    }


class TestGateSynthetic:
    def test_band_floor_absorbs_small_drift(self):
        report = compare_records(_synthetic(1.2), [_synthetic(1.0)])
        (verdict,) = report.verdicts
        assert verdict.verdict == "unchanged"
        assert verdict.band == pytest.approx(0.30)

    def test_regression_beyond_the_floor_is_flagged(self):
        report = compare_records(_synthetic(2.0), [_synthetic(1.0)])
        (verdict,) = report.verdicts
        assert verdict.verdict == "regressed"
        assert verdict.ratio == pytest.approx(2.0)

    def test_improvement_is_symmetric(self):
        report = compare_records(_synthetic(0.5), [_synthetic(1.0)])
        assert report.verdicts[0].verdict == "improved"

    def test_noisy_history_widens_the_band(self):
        # rel MAD 0.1 on both sides -> band = 5.0 * 0.1 * 1.4826 ~ 0.74:
        # a 1.6x shift inside that noise is NOT a regression.
        report = compare_records(
            _synthetic(1.6, mad=0.16), [_synthetic(1.0, mad=0.1)]
        )
        (verdict,) = report.verdicts
        assert verdict.band == pytest.approx(5.0 * 0.1 * 1.4826)
        assert verdict.verdict == "unchanged"

    def test_sub_resolution_shifts_are_unchanged(self):
        # 0.15 -> 0.26 ms is a 1.7x ratio but a 0.11 ms absolute shift:
        # below min_effect_ms, so never a verdict either way.
        report = compare_records(_synthetic(0.26), [_synthetic(0.15)])
        assert report.verdicts[0].verdict == "unchanged"
        report = compare_records(
            _synthetic(0.26), [_synthetic(0.15)], min_effect_ms=0.0
        )
        assert report.verdicts[0].verdict == "regressed"

    def test_one_freak_record_cannot_poison_the_band(self):
        # Median dispersion: two tight records + one storm-era record
        # still yield a tight band, so a genuine 2x is flagged.
        report = compare_records(
            _synthetic(2.0),
            [_synthetic(1.0), _synthetic(1.0), _synthetic(1.0, mad=0.5)],
        )
        (verdict,) = report.verdicts
        assert verdict.band == pytest.approx(0.30)
        assert verdict.verdict == "regressed"

    def test_center_is_median_of_history(self):
        report = compare_records(
            _synthetic(1.0),
            [_synthetic(0.9), _synthetic(1.0), _synthetic(100.0)],
        )
        (verdict,) = report.verdicts
        assert verdict.baseline_p50_ms == pytest.approx(1.0)
        assert verdict.verdict == "unchanged"

    def test_cross_version_baselines_are_skipped(self):
        report = compare_records(
            _synthetic(5.0), [_synthetic(1.0, version=2)]
        )
        assert report.baseline_count == 0
        (verdict,) = report.verdicts
        assert verdict.verdict == "new"
        assert any("workload identity" in note for note in report.notes)

    def test_machine_mismatch_is_noted_not_fatal(self):
        other = _synthetic(1.0)
        other["machine"]["fingerprint"] = "deadbeef00000000"
        report = compare_records(_synthetic(1.0), [other])
        assert any("fingerprint" in note for note in report.notes)
        assert report.verdicts[0].verdict == "unchanged"

    def test_compare_needs_two_records(self):
        with pytest.raises(ValueError, match="at least two"):
            compare_trajectory([_synthetic(1.0)])

    def test_render_report_names_regressions(self):
        report = compare_records(_synthetic(2.0), [_synthetic(1.0)])
        text = render_report(report)
        assert "REGRESSED" in text
        assert "GES/IC1" in text

    def test_summary_counts(self):
        report = GateReport(workload="w", baseline_count=1)
        assert "OK" in report.summary()


# -- the trajectory file ---------------------------------------------------------


class TestTrajectory:
    def test_append_and_load_round_trip(self, tmp_path, smoke_records):
        path = tmp_path / "traj.json"
        append_record(smoke_records[0], path)
        append_record(smoke_records[1], path)
        records = load_trajectory(path)
        assert len(records) == 2
        assert records[0] == smoke_records[0]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_trajectory(tmp_path / "absent.json") == []

    def test_validation_rejects_garbage_with_a_path(self):
        with pytest.raises(TrajectoryError, match="schema_version"):
            validate_record({"workload": {}})
        bad = _synthetic(1.0)
        bad["schema_version"] = 1
        bad["recorded_at"] = "t"
        bad["git_sha"] = "s"
        bad["elapsed_seconds"] = 0.1
        bad["workload"].update(
            seed=1, param_seed=1, warmup=1, repeats=1, draws=1,
            read_queries=[], update_queries=[], variants=[],
        )
        del bad["variants"]["GES"]["queries"]["IC1"]["p50_ms"]
        bad["variants"]["GES"]["ops_per_second"] = 1.0
        bad["variants"]["GES"]["peak_fblock_bytes"] = 0
        bad["variants"]["GES"]["plan_cache_hit_rate"] = None
        bad["variants"]["GES"]["compression_ratio"] = None
        with pytest.raises(TrajectoryError, match=r"variants\.GES\.queries\.IC1\.p50_ms"):
            validate_record(bad)

    def test_truncated_file_fails_loudly(self, tmp_path):
        path = tmp_path / "traj.json"
        path.write_text('{"schema_version": 1, "records": [')
        with pytest.raises(TrajectoryError, match="not valid JSON"):
            load_trajectory(path)

    def test_append_refuses_invalid_record(self, tmp_path):
        with pytest.raises(TrajectoryError):
            append_record({"nope": True}, tmp_path / "traj.json")

    def test_repo_trajectory_is_schema_valid(self):
        # The committed BENCH_trajectory.json must always load cleanly.
        records = load_trajectory()
        assert len(records) >= 1

    def test_render_history_lists_records(self, tmp_path, smoke_records):
        path = tmp_path / "traj.json"
        append_record(smoke_records[0], path)
        text = render_history(load_trajectory(path))
        assert "smoke v2" in text
        assert render_history([]).startswith("trajectory is empty")


# -- the CLI ---------------------------------------------------------------------


class TestPerfCli:
    def _write(self, tmp_path, *records):
        path = tmp_path / "traj.json"
        payload = {"schema_version": 1, "records": list(records)}
        path.write_text(json.dumps(payload))
        return str(path)

    def _full_record(self, p50, mad=0.0):
        record = _synthetic(p50, mad=mad)
        record.update(
            schema_version=1,
            recorded_at="2026-01-01T00:00:00+00:00",
            git_sha="cafe",
            elapsed_seconds=0.5,
        )
        record["workload"].update(
            seed=42, param_seed=1234, warmup=1, repeats=3, draws=2,
            read_queries=["IC1"], update_queries=[], variants=["GES"],
        )
        record["variants"]["GES"].update(
            ops_per_second=100.0,
            plan_cache_hit_rate=0.9,
            compression_ratio=2.0,
            peak_fblock_bytes=1024,
        )
        return record

    def test_compare_exit_codes(self, tmp_path, capsys):
        unchanged = self._write(
            tmp_path, self._full_record(1.0), self._full_record(1.05)
        )
        assert main(["perf", "compare", "--trajectory", unchanged]) == 0
        assert "OK" in capsys.readouterr().out

        regressed = self._write(
            tmp_path, self._full_record(1.0), self._full_record(3.0)
        )
        assert main(["perf", "compare", "--trajectory", regressed]) == 1
        assert "GES/IC1: regressed" in capsys.readouterr().out

    def test_compare_on_short_trajectory_exits_with_message(self, tmp_path):
        path = self._write(tmp_path, self._full_record(1.0))
        with pytest.raises(SystemExit, match="at least two"):
            main(["perf", "compare", "--trajectory", path])

    def test_report_lists_history(self, tmp_path, capsys):
        path = self._write(tmp_path, self._full_record(1.0))
        assert main(["perf", "report", "--trajectory", path]) == 0
        assert "smoke v1" in capsys.readouterr().out

    def test_record_rejects_unknown_workload(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["perf", "record", "--workload", "nope"])

    def test_record_rejects_bad_slowdown_spec(self):
        with pytest.raises(SystemExit, match="OPERATOR=FACTOR"):
            main(["perf", "record", "--workload", "smoke",
                  "--inject-slowdown", "Expand"])
