"""Tests of the factorized executor's specific behaviours: pointer-join
laziness, selection-vector filtering, de-factor triggers, node-local
order-by, and the fused operators."""

import numpy as np
import pytest

from repro.core.lazy import LazyNeighborColumn
from repro.exec import ExecStats, execute_factorized, execute_flat
from repro.exec.base import ExecutionContext
from repro.exec.factorized import PipelineState, dispatch_factorized, tuples_through
from repro.plan import (
    AggSpec,
    Aggregate,
    AggregateTopK,
    Col,
    Distinct,
    Expand,
    Filter,
    GetProperty,
    Limit,
    LogicalPlan,
    NodeByIdSeek,
    NodeScan,
    OrderBy,
    Project,
    TopK,
    lit,
    optimize,
    resolve_labels,
)
from repro.storage.catalog import Direction


def run_fact(store, ops, returns=None, params=None, stats=None):
    return execute_factorized(
        LogicalPlan(ops, returns=returns), store.read_view(), params, stats
    )


def state_after(store, ops, params=None):
    """Run a prefix of operators, returning the raw pipeline state."""
    plan = LogicalPlan(ops)
    view = store.read_view()
    ctx = ExecutionContext(view, params)
    ctx.var_labels = resolve_labels(plan, view.schema)
    state = PipelineState()
    for op in ops:
        dispatch_factorized(state, op, ctx)
    return state, ctx


class TestPointerJoin:
    def test_expand_produces_lazy_column(self, micro_store):
        state, _ = state_after(
            micro_store,
            [
                NodeByIdSeek("p", "Person", lit(0)),
                Expand("p", "f", "KNOWS", Direction.OUT),
            ],
        )
        node = state.tree.node_of("f")
        column = node.block.column("f")
        assert isinstance(column, LazyNeighborColumn)
        assert not column.is_materialized

    def test_lazy_column_bytes_are_reference_sized(self, micro_store):
        state, _ = state_after(
            micro_store,
            [
                NodeByIdSeek("p", "Person", lit(0)),
                Expand("p", "f", "KNOWS", Direction.OUT),
            ],
        )
        column = state.tree.node_of("f").block.column("f")
        assert column.nbytes == 16  # one (ptr, len) reference per parent entry

    def test_get_property_materializes(self, micro_store):
        state, _ = state_after(
            micro_store,
            [
                NodeByIdSeek("p", "Person", lit(0)),
                Expand("p", "f", "KNOWS", Direction.OUT),
                GetProperty("f", "age", "age"),
            ],
        )
        assert state.tree.node_of("f").block.column("f").is_materialized

    def test_edge_props_use_general_path(self, micro_store):
        state, _ = state_after(
            micro_store,
            [
                NodeByIdSeek("p", "Person", lit(0)),
                Expand("p", "f", "KNOWS", Direction.OUT, edge_props={"since": "since"}),
            ],
        )
        assert not isinstance(
            state.tree.node_of("f").block.column("f"), LazyNeighborColumn
        )

    def test_selection_prunes_expansion(self, micro_store):
        state, _ = state_after(
            micro_store,
            [
                NodeScan("p", "Person"),
                GetProperty("p", "age", "age"),
                Filter(Col("age") > lit(100)),  # nobody passes
                Expand("p", "f", "KNOWS", Direction.OUT),
            ],
        )
        assert len(state.tree.node_of("f").block.column("f")) == 0


class TestFilter:
    def test_node_local_filter_updates_selection(self, micro_store):
        state, ctx = state_after(
            micro_store,
            [
                NodeScan("m", "Message"),
                GetProperty("m", "length", "len"),
                Filter(Col("len") > lit(125)),
            ],
        )
        node = state.tree.node_of("len")
        assert node.num_valid == 3
        assert ctx.stats.defactor_count == 0

    def test_multi_node_filter_defactors(self, micro_store):
        state, ctx = state_after(
            micro_store,
            [
                NodeScan("m", "Message"),
                GetProperty("m", "length", "len"),
                Expand("m", "c", "HAS_CREATOR", Direction.OUT, to_label="Person"),
                GetProperty("c", "age", "age"),
                Filter(Col("len") > Col("age")),
            ],
        )
        assert state.tree is None
        assert ctx.stats.defactor_count == 1

    def test_selective_get_property_skips_invalid(self, micro_store):
        state, _ = state_after(
            micro_store,
            [
                NodeScan("m", "Message"),
                GetProperty("m", "length", "len"),
                Filter(Col("len") > lit(125)),
                GetProperty("m", "id", "mid"),
            ],
        )
        node = state.tree.node_of("mid")
        values = node.block.column("mid").values()
        from repro.types import NULL_INT

        invalid = np.flatnonzero(~node.selection)
        assert all(values[i] == NULL_INT for i in invalid)


class TestAggregates:
    def test_plain_aggregate_defactors(self, micro_store):
        stats = ExecStats()
        run_fact(
            micro_store,
            [
                NodeScan("m", "Message"),
                Expand("m", "c", "HAS_CREATOR", Direction.OUT, to_label="Person"),
                GetProperty("c", "id", "cid"),
                Aggregate(["cid"], [AggSpec("n", "count")]),
            ],
            stats=stats,
        )
        assert stats.defactor_count == 1

    def test_fused_aggregate_stays_factorized(self, micro_store):
        stats = ExecStats()
        result = run_fact(
            micro_store,
            [
                NodeScan("p", "Person"),
                GetProperty("p", "id", "pid"),
                Expand("p", "m", "HAS_CREATOR", Direction.IN, to_label="Message"),
                AggregateTopK(["pid"], [AggSpec("n", "count")], [("n", False), ("pid", True)], 3),
            ],
            returns=["pid", "n"],
            stats=stats,
        )
        assert stats.defactor_count == 0
        assert result.rows == [(2, 2), (3, 2), (1, 1)]

    def test_tuples_through_matches_counts(self, micro_store):
        state, _ = state_after(
            micro_store,
            [
                NodeScan("p", "Person"),
                Expand("p", "m", "HAS_CREATOR", Direction.IN, to_label="Message"),
            ],
        )
        tree = state.tree
        through_root = tuples_through(tree, tree.root)
        # Persons 0 and 4... creators: p1:1, p2:2, p3:2, p4:1, p0:0.
        assert through_root.tolist() == [0, 1, 2, 2, 1]
        assert int(through_root.sum()) == tree.num_tuples()


class TestOrderByLimit:
    def ops(self):
        return [
            NodeScan("m", "Message"),
            GetProperty("m", "length", "len"),
            GetProperty("m", "id", "mid"),
            OrderBy([("len", False), ("mid", True)]),
            Limit(3),
        ]

    def test_node_local_order_limit_no_defactor(self, micro_store):
        stats = ExecStats()
        result = run_fact(micro_store, self.ops(), returns=["mid", "len"], stats=stats)
        assert result.rows == [(103, 200), (100, 140), (105, 130)]
        assert stats.defactor_count == 0

    def test_matches_flat(self, micro_store):
        plan = LogicalPlan(self.ops(), returns=["mid", "len"])
        flat = execute_flat(plan, micro_store.read_view())
        fact = execute_factorized(plan, micro_store.read_view())
        assert flat.rows == fact.rows

    def test_order_without_limit_defactors(self, micro_store):
        stats = ExecStats()
        result = run_fact(
            micro_store,
            [
                NodeScan("m", "Message"),
                GetProperty("m", "length", "len"),
                OrderBy([("len", True)]),
            ],
            returns=["len"],
            stats=stats,
        )
        assert [r[0] for r in result.rows] == [90, 120, 123, 130, 140, 200]
        assert stats.defactor_count == 1

    def test_multi_node_order_defactors(self, micro_store):
        stats = ExecStats()
        run_fact(
            micro_store,
            [
                NodeScan("m", "Message"),
                GetProperty("m", "length", "len"),
                Expand("m", "c", "HAS_CREATOR", Direction.OUT, to_label="Person"),
                GetProperty("c", "age", "age"),
                OrderBy([("len", True), ("age", True)]),
                Limit(2),
            ],
            stats=stats,
        )
        assert stats.defactor_count == 1

    def test_fused_top_k(self, micro_store):
        stats = ExecStats()
        result = run_fact(
            micro_store,
            [
                NodeScan("m", "Message"),
                GetProperty("m", "length", "len"),
                GetProperty("m", "id", "mid"),
                Project([("mid", Col("mid")), ("len", Col("len"))]),
                TopK([("len", False), ("mid", True)], 2),
            ],
            returns=["mid", "len"],
            stats=stats,
        )
        assert result.rows == [(103, 200), (100, 140)]
        assert stats.defactor_count == 0


class TestLimitAndDistinct:
    def test_limit_via_enumeration(self, micro_store):
        stats = ExecStats()
        result = run_fact(
            micro_store,
            [NodeScan("m", "Message"), GetProperty("m", "id", "mid"), Limit(2)],
            returns=["mid"],
            stats=stats,
        )
        assert result.rows == [(100,), (101,)]
        assert stats.defactor_count == 0

    def test_distinct_defactors(self, micro_store):
        stats = ExecStats()
        result = run_fact(
            micro_store,
            [
                NodeScan("p", "Person"),
                GetProperty("p", "firstName", "n"),
                Distinct(["n"]),
            ],
            stats=stats,
        )
        assert sorted(r[0] for r in result.rows) == ["A", "B", "C", "E"]
        assert stats.defactor_count == 1


class TestMemoryAdvantage:
    def test_factorized_peak_below_flat_on_fanout(self, micro_store):
        """The structural claim of the paper on a 2-hop expansion."""
        ops = [
            NodeByIdSeek("p", "Person", lit(0)),
            Expand("p", "f", "KNOWS", Direction.OUT, max_hops=2, exclude_start=True),
            Expand("f", "m", "HAS_CREATOR", Direction.IN, to_label="Message"),
            GetProperty("m", "length", "len"),
            Filter(Col("len") > lit(100)),
            GetProperty("m", "id", "mid"),
            Project([("mid", Col("mid")), ("len", Col("len"))]),
            OrderBy([("len", False), ("mid", True)]),
            Limit(2),
        ]
        plan = LogicalPlan(ops, returns=["mid", "len"])
        flat_stats, fact_stats = ExecStats(), ExecStats()
        flat = execute_flat(plan, micro_store.read_view(), stats=flat_stats)
        fact = execute_factorized(plan, micro_store.read_view(), stats=fact_stats)
        assert flat.rows == fact.rows
        assert fact_stats.peak_intermediate_bytes < flat_stats.peak_intermediate_bytes
