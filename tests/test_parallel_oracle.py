"""Cross-process differential battery: the pooled engine vs everything else.

``testkit.oracle._default_engines`` includes ``GES/pooled`` (two worker
processes, scatter forced on), so every fuzz iteration here checks the
shared-memory path — scatter-gather *and* whole-query offload — for bag
equality against the in-process flat, factorized, fused, and Volcano
engines, over graphs that mutate mid-campaign (overlay exports included).
"""

from __future__ import annotations

import pytest

from repro.engine.config import EngineConfig
from repro.engine.service import GraphEngineService
from repro.ldbc.validation import rows_bag
from repro.testkit import FuzzConfig, run_fuzz
from repro.testkit.graphgen import generate_store
from repro.testkit.oracle import _default_engines


def test_default_oracle_includes_pooled_engine():
    """Every fuzz/corpus run exercises the cross-process engine."""
    store, _ = generate_store(0)
    engines = _default_engines(store)
    try:
        pooled = engines["GES/pooled"]
        assert pooled.parallel is not None
        assert pooled.parallel.workers == 2
    finally:
        for engine in engines.values():
            close = getattr(engine, "close", None)
            if close is not None:
                close()


@pytest.mark.parallel
@pytest.mark.parametrize("seed", range(5))
def test_fuzz_campaign_with_pooled_engine(seed):
    """Seeds 0-4: no engine — pooled included — may disagree on any query."""
    report = run_fuzz(
        FuzzConfig(seed=seed, iterations=15, stress_runs=0, shrink=False)
    )
    assert report.passed, report.summary()


@pytest.mark.parallel
def test_pooled_engine_actually_pools(micro_store):
    """The oracle's agreement is vacuous if queries silently fall back
    in-process — assert the pooled engine routed through the pool."""
    pooled = GraphEngineService(
        micro_store, EngineConfig.ges(workers=2, scatter_min_rows=1)
    )
    inproc = GraphEngineService(micro_store, EngineConfig.ges())
    try:
        queries = [
            "MATCH (p:Person) RETURN p.age ORDER BY p.age LIMIT 3",
            "MATCH (p:Person)-[:KNOWS]->(f:Person) RETURN p.id, f.id",
            "MATCH (m:Message) RETURN count(m.id)",
        ]
        for text in queries:
            base = inproc.execute(text)
            got = pooled.execute(text)
            assert list(got.columns) == list(base.columns)
            assert rows_bag(got.rows) == rows_bag(base.rows)
        routing = pooled.parallel.describe()
        assert routing["pooled_queries"] == len(queries)
        assert routing["fallbacks"] == 0
        assert routing["scatter_queries"] >= 1
    finally:
        pooled.close()


@pytest.mark.parallel
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_stress_pooled_reader_pin_holds_across_process_boundary(seed):
    """A pinned snapshot exported *after* later in-place commits must read
    back the pinned version from a worker process — COW patch-back plus
    MVCC stamp filtering survive the shared-memory export."""
    from repro.testkit.stress import StressConfig, run_stress

    report = run_stress(
        StressConfig(seed=seed, pooled_readers=2, pins_per_reader=3)
    )
    assert report.passed, report.summary()
    assert report.pooled_reads == 2 * 3  # every pin was checked cross-process
