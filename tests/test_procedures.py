"""Tests for stored procedures (IC13/IC14 machinery), verified against
networkx as an independent oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec.procedures import (
    _enumerate_shortest_paths,
    get_procedure,
    register_procedure,
)
from repro.storage.catalog import AdjacencyKey, Direction


def knows_graph(store) -> nx.Graph:
    graph = nx.Graph()
    key = AdjacencyKey("Person", "KNOWS", "Person", Direction.OUT)
    adjacency = store.adjacency(key)
    view = store.read_view()
    for row in view.all_rows("Person"):
        graph.add_node(int(row))
        for neighbor in view.neighbors(key, int(row)):
            graph.add_edge(int(row), int(neighbor))
    return graph


class TestShortestPathLength:
    def test_direct_friends(self, micro_store):
        fn = get_procedure("shortest_path_length")
        out = fn(micro_store.read_view(), {"person1_id": 0, "person2_id": 1})
        assert out.to_pylist() == [(1,)]

    def test_two_hops(self, micro_store):
        fn = get_procedure("shortest_path_length")
        out = fn(micro_store.read_view(), {"person1_id": 0, "person2_id": 3})
        assert out.to_pylist() == [(2,)]

    def test_same_person(self, micro_store):
        fn = get_procedure("shortest_path_length")
        out = fn(micro_store.read_view(), {"person1_id": 2, "person2_id": 2})
        assert out.to_pylist() == [(0,)]

    def test_unknown_person(self, micro_store):
        fn = get_procedure("shortest_path_length")
        out = fn(micro_store.read_view(), {"person1_id": 0, "person2_id": 999})
        assert out.to_pylist() == [(-1,)]

    def test_matches_networkx_on_sf1(self, sf1_dataset):
        graph = knows_graph(sf1_dataset.store)
        view = sf1_dataset.store.read_view()
        fn = get_procedure("shortest_path_length")
        table = sf1_dataset.store.table("Person")
        rng = np.random.default_rng(3)
        rows = rng.choice(view.all_rows("Person"), size=10, replace=False)
        for i in range(0, 10, 2):
            a, b = int(rows[i]), int(rows[i + 1])
            ida, idb = table.get_property(a, "id"), table.get_property(b, "id")
            try:
                expected = nx.shortest_path_length(graph, a, b)
            except nx.NetworkXNoPath:
                expected = -1
            got = fn(view, {"person1_id": ida, "person2_id": idb}).to_pylist()[0][0]
            assert got == expected


class TestPathEnumeration:
    def test_all_paths_are_shortest(self, sf1_dataset):
        graph = knows_graph(sf1_dataset.store)
        view = sf1_dataset.store.read_view()
        rows = view.all_rows("Person")
        src, dst = int(rows[0]), int(rows[-1])
        paths = _enumerate_shortest_paths(view, src, dst)
        if not paths:
            pytest.skip("disconnected pair")
        expected_len = nx.shortest_path_length(graph, src, dst)
        assert all(len(p) - 1 == expected_len for p in paths)
        assert all(p[0] == src and p[-1] == dst for p in paths)

    def test_path_count_matches_networkx(self, micro_store):
        view = micro_store.read_view()
        ours = _enumerate_shortest_paths(view, 3, 4)
        expected = list(nx.all_shortest_paths(knows_graph(micro_store), 3, 4))
        assert sorted(map(tuple, ours)) == sorted(map(tuple, expected))


class TestWeightedPaths:
    def test_output_sorted_by_weight_desc(self, sf1_dataset):
        view = sf1_dataset.store.read_view()
        table = sf1_dataset.store.table("Person")
        fn = get_procedure("weighted_shortest_paths")
        rows = view.all_rows("Person")
        out = fn(
            view,
            {
                "person1_id": table.get_property(int(rows[0]), "id"),
                "person2_id": table.get_property(int(rows[5]), "id"),
            },
        )
        weights = [r[1] for r in out.to_pylist()]
        assert weights == sorted(weights, reverse=True)

    def test_unknown_persons_empty(self, micro_store):
        fn = get_procedure("weighted_shortest_paths")
        out = fn(micro_store.read_view(), {"person1_id": -1, "person2_id": -2})
        assert out.to_pylist() == []


class TestRegistry:
    def test_unknown_procedure(self):
        with pytest.raises(ExecutionError):
            get_procedure("ghost")

    def test_register_custom(self, micro_store):
        from repro.core.flatblock import FlatBlock
        from repro.types import DataType

        @register_procedure("answer")
        def answer(view, args):
            return FlatBlock.from_dict({"x": (DataType.INT64, [42])})

        out = get_procedure("answer")(micro_store.read_view(), {})
        assert out.to_pylist() == [(42,)]

    def test_khop_neighborhood(self, micro_store):
        fn = get_procedure("khop_neighborhood")
        out = fn(micro_store.read_view(), {"person_id": 0, "hops": 2})
        assert [r[0] for r in out.to_pylist()] == [1, 2, 3, 4]
