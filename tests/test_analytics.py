"""Tests for the OLAP analytics procedures, verified against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec.procedures import get_procedure
from repro.plan import LogicalPlan, ProcedureCall, lit
from repro.storage.catalog import AdjacencyKey, Direction


def knows_graph(store, n):
    key = AdjacencyKey("Person", "KNOWS", "Person", Direction.OUT)
    view = store.read_view()
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for row in range(n):
        for neighbor in view.neighbors(key, row):
            graph.add_edge(row, int(neighbor))
    return graph


@pytest.fixture(scope="module")
def sf1(sf1_dataset):
    return sf1_dataset, knows_graph(sf1_dataset.store, sf1_dataset.info.num_persons)


class TestPageRank:
    def test_matches_networkx(self, sf1):
        dataset, graph = sf1
        block = get_procedure("pagerank")(dataset.store.read_view(), {})
        ours = dict(block.to_pylist())
        theirs = nx.pagerank(graph, alpha=0.85)
        assert max(abs(theirs[v] - ours[v]) for v in graph) < 1e-4

    def test_ranks_sum_to_one(self, sf1):
        dataset, _ = sf1
        block = get_procedure("pagerank")(dataset.store.read_view(), {})
        total = sum(r for _, r in block.to_pylist())
        assert abs(total - 1.0) < 1e-9

    def test_damping_parameter(self, sf1):
        dataset, _ = sf1
        view = dataset.store.read_view()
        uniformish = get_procedure("pagerank")(view, {"damping": 0.0})
        ranks = [r for _, r in uniformish.to_pylist()]
        assert max(ranks) - min(ranks) < 1e-12  # damping 0 => uniform

    def test_micro_graph_converges_exactly(self, micro_store):
        block = get_procedure("pagerank")(
            micro_store.read_view(), {"iterations": 200, "tolerance": 1e-14}
        )
        ours = dict(block.to_pylist())
        theirs = nx.pagerank(knows_graph(micro_store, 5), alpha=0.85)
        # networkx's own stopping tolerance is 1e-6/node; compare within it.
        assert max(abs(theirs[v] - ours[v]) for v in range(5)) < 1e-5


class TestConnectedComponents:
    def test_matches_networkx(self, sf1):
        dataset, graph = sf1
        block = get_procedure("connected_components")(dataset.store.read_view(), {})
        ours = dict(block.to_pylist())
        theirs = {v: min(c) for c in nx.connected_components(graph) for v in c}
        assert ours == theirs

    def test_micro_graph_single_component(self, micro_store):
        block = get_procedure("connected_components")(micro_store.read_view(), {})
        components = {c for _, c in block.to_pylist()}
        assert components == {0}

    def test_isolated_vertex_is_own_component(self, micro_store):
        micro_store.add_vertex("Person", {"id": 99, "firstName": "I", "age": 1})
        block = get_procedure("connected_components")(micro_store.read_view(), {})
        assert dict(block.to_pylist())[5] == 5


class TestTriangles:
    def test_matches_networkx(self, sf1):
        dataset, graph = sf1
        block = get_procedure("triangle_count")(dataset.store.read_view(), {})
        ours = dict(block.to_pylist())
        theirs = nx.triangles(graph)
        assert all(theirs[v] == ours[v] for v in graph)

    def test_micro_graph_has_no_triangles(self, micro_store):
        block = get_procedure("triangle_count")(micro_store.read_view(), {})
        assert all(t == 0 for _, t in block.to_pylist())

    def test_planted_triangle(self, micro_store):
        from repro.storage.graph import VertexRef

        # Close the 0-1-3 path into a triangle (KNOWS kept symmetric)...
        micro_store.add_edge("KNOWS", VertexRef("Person", 0), VertexRef("Person", 3))
        micro_store.add_edge("KNOWS", VertexRef("Person", 3), VertexRef("Person", 0))
        # ...then compact via a snapshot round-trip so CSR analytics apply.
        import tempfile

        from repro.storage import load_graph, save_graph

        with tempfile.TemporaryDirectory() as tmp:
            store = load_graph(save_graph(micro_store, tmp))
        block = get_procedure("triangle_count")(store.read_view(), {})
        ours = dict(block.to_pylist())
        assert ours[0] == ours[1] == ours[3] == 1
        assert ours[2] == ours[4] == 0


class TestDegreeDistribution:
    def test_total_matches_vertex_count(self, sf1):
        dataset, _ = sf1
        block = get_procedure("degree_distribution")(dataset.store.read_view(), {})
        assert sum(n for _, n in block.to_pylist()) == dataset.info.num_persons

    def test_micro_graph(self, micro_store):
        block = get_procedure("degree_distribution")(micro_store.read_view(), {})
        # Persons 0,1,2 have two friends; persons 3,4 have one.
        assert dict(block.to_pylist()) == {1: 2, 2: 3}


class TestIntegration:
    def test_callable_from_a_plan(self, micro_store):
        from repro.exec import execute_factorized

        plan = LogicalPlan(
            [ProcedureCall("pagerank", {"vertex_label": lit("Person"),
                                        "edge_label": lit("KNOWS")})],
            returns=["vertex", "rank"],
        )
        result = execute_factorized(plan, micro_store.read_view())
        assert len(result.rows) == 5

    def test_updated_adjacency_rejected(self, micro_store):
        from repro.storage.graph import VertexRef

        micro_store.remove_edge("KNOWS", VertexRef("Person", 0), VertexRef("Person", 1))
        with pytest.raises(ExecutionError):
            get_procedure("pagerank")(micro_store.read_view(), {})
