"""Tests for bulk de-factoring (materialization)."""

import numpy as np
import pytest

from repro.core import Column, FBlock, FTree, IndexVector, materialize, materialize_rows
from repro.types import DataType


def chain_tree() -> FTree:
    """r(2 entries) -> a(4) -> b(7): a pure chain."""
    tree = FTree.single("r", FBlock.from_arrays(r=[0, 1]))
    a = FBlock.from_arrays(a=[10, 11, 12, 13])
    node_a = tree.add_child(
        tree.root, "a", a, IndexVector(np.asarray([0, 2]), np.asarray([2, 4]))
    )
    b = FBlock.from_arrays(b=[20, 21, 22, 23, 24, 25, 26])
    tree.add_child(
        node_a, "b", b,
        IndexVector(np.asarray([0, 2, 3, 5]), np.asarray([2, 3, 5, 7])),
    )
    return tree


def branching_tree() -> FTree:
    """r(2) with two children x(3) and y(4): tests the cross product."""
    tree = FTree.single("r", FBlock.from_arrays(r=[0, 1]))
    tree.add_child(
        tree.root, "x", FBlock.from_arrays(x=[1, 2, 3]),
        IndexVector(np.asarray([0, 1]), np.asarray([1, 3])),
    )
    tree.add_child(
        tree.root, "y", FBlock.from_arrays(y=[5, 6, 7, 8]),
        IndexVector(np.asarray([0, 2]), np.asarray([2, 4])),
    )
    return tree


class TestChain:
    def test_count(self):
        assert chain_tree().num_tuples() == 7

    def test_matches_enumeration(self):
        tree = chain_tree()
        assert materialize(tree).to_pylist() == list(tree.iter_tuples())

    def test_selection_respected(self):
        tree = chain_tree()
        tree.node_of("a").and_selection(np.asarray([True, False, True, True]))
        assert materialize(tree).to_pylist() == list(tree.iter_tuples())

    def test_leaf_selection(self):
        tree = chain_tree()
        mask = np.asarray([True, False] * 3 + [True])
        tree.node_of("b").and_selection(mask)
        flat = materialize(tree)
        assert len(flat) == tree.num_tuples()
        assert all(row[2] in (20, 22, 24, 26) for row in flat.to_pylist())


class TestBranching:
    def test_cross_product_count(self):
        # entry 0: 1 x * 2 y = 2; entry 1: 2 x * 2 y = 4
        assert branching_tree().num_tuples() == 6

    def test_matches_enumeration(self):
        tree = branching_tree()
        assert materialize(tree).to_pylist() == list(tree.iter_tuples())

    def test_sibling_selection_interacts(self):
        tree = branching_tree()
        tree.node_of("x").and_selection(np.asarray([False, True, True]))
        assert materialize(tree).to_pylist() == list(tree.iter_tuples())
        assert tree.num_tuples() == 4


class TestProjections:
    def test_subset_of_attrs(self):
        tree = chain_tree()
        flat = materialize(tree, ["b", "r"])
        assert flat.schema == ["b", "r"]
        assert flat.to_pylist() == list(tree.iter_tuples(["b", "r"]))

    def test_materialize_rows_shapes(self):
        tree = chain_tree()
        rows = materialize_rows(tree)
        total = tree.num_tuples()
        assert all(len(v) == total for v in rows.values())

    def test_empty_tree(self):
        tree = FTree.single("r", FBlock.from_arrays(r=[]))
        assert materialize(tree).to_pylist() == []
        assert tree.num_tuples() == 0

    def test_all_filtered(self):
        tree = chain_tree()
        tree.root.and_selection(np.asarray([False, False]))
        assert materialize(tree).to_pylist() == []
