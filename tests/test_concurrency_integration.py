"""Integration tests: concurrent readers and writers over one engine.

MV2PL promises non-blocking snapshot reads while writers commit; these
tests hammer that promise with real threads over the SF1 graph.
"""

import threading

import pytest

from repro.engine import EngineConfig, GES
from repro.exec.base import ExecStats
from repro.ldbc import ParameterGenerator, REGISTRY, generate


@pytest.fixture
def engine():
    dataset = generate("SF1", seed=42)
    return GES(dataset.store, EngineConfig.ges_f_star()), dataset


class TestReadersUnderWrites:
    def test_readers_never_fail_while_writers_commit(self, engine):
        ges, dataset = engine
        gen = ParameterGenerator(dataset, seed=5)
        read_params = [gen.params_for("IC9") for _ in range(4)]
        errors: list[Exception] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                for params in read_params:
                    try:
                        rows = REGISTRY["IC9"].fn(ges, params, ExecStats())
                        assert len(rows) <= 20
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return

        def writer():
            try:
                for _ in range(15):
                    for name in ("IU2", "IU7", "IU8"):
                        REGISTRY[name].fn(ges, gen.params_for(name), ExecStats())
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        writer_thread = threading.Thread(target=writer)
        for t in readers:
            t.start()
        writer_thread.start()
        writer_thread.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        assert ges.txn_manager.versions.current() == 45

    def test_snapshot_repeatable_read(self, engine):
        """A view taken before updates keeps returning the same answer."""
        ges, dataset = engine
        gen = ParameterGenerator(dataset, seed=5)
        params = gen.params_for("IS3")
        view = ges.read_view()
        plan = ges.plan(
            "MATCH (p:Person) WHERE id(p) = $personId "
            "MATCH (p)-[:KNOWS]->(f) RETURN count(*) AS n"
        )
        before = ges.execute(plan, params, view=view).rows
        # Commit new friendships involving arbitrary persons.
        for _ in range(5):
            REGISTRY["IU8"].fn(ges, gen.params_for("IU8"), ExecStats())
        after_same_view = ges.execute(plan, params, view=view).rows
        assert after_same_view == before

    def test_new_view_sees_the_writes(self, engine):
        ges, dataset = engine
        gen = ParameterGenerator(dataset, seed=6)
        count_plan = ges.plan("MATCH (p:Person) RETURN count(*) AS n")
        before = ges.execute(count_plan).rows[0][0]
        REGISTRY["IU1"].fn(ges, gen.params_for("IU1"), ExecStats())
        after = ges.execute(count_plan).rows[0][0]
        assert after == before + 1

    def test_snapshot_pruning_after_quiescence(self, engine):
        ges, dataset = engine
        gen = ParameterGenerator(dataset, seed=7)
        person = gen.params_for("IS1")["personId"]
        row = ges.read_view().vertex_by_key("Person", person)
        for value in ("X", "Y", "Z"):
            txn = ges.transaction()
            txn.set_vertex_property("Person", row, "lastName", value)
            txn.commit()
        assert ges.txn_manager.overlay.snapshot_count == 3
        released = ges.txn_manager.prune_snapshots()
        assert released == 3
        assert ges.read_view().get_property("Person", row, "lastName") == "Z"
