"""Tests for the SNB schema and the deterministic data generator."""

import numpy as np
import pytest

from repro.ldbc.datagen import SCALE_FACTORS, SIM_END, SIM_START, generate, resolve_scale
from repro.ldbc.schema import ID_BASE, build_snb_schema
from repro.storage.catalog import AdjacencyKey, Direction


class TestSchema:
    def test_all_labels_present(self):
        schema = build_snb_schema()
        assert set(schema.vertex_labels) == {
            "Person", "Message", "Forum", "Tag", "TagClass", "Place", "Organisation",
        }

    def test_polymorphic_has_tag(self):
        schema = build_snb_schema()
        assert len(schema.edge_definitions("HAS_TAG")) == 2

    def test_is_located_in_three_sources(self):
        schema = build_snb_schema()
        assert len(schema.edge_definitions("IS_LOCATED_IN")) == 3

    def test_knows_has_creation_date(self):
        schema = build_snb_schema()
        definition = schema.edge_definition("KNOWS", "Person", "Person")
        assert definition.property("creationDate") is not None

    def test_id_bases_disjoint(self):
        bases = sorted(ID_BASE.values())
        assert len(set(bases)) == len(bases)


class TestScales:
    def test_known_scale_factors(self):
        assert set(SCALE_FACTORS) == {"SF1", "SF10", "SF30", "SF100", "SF300"}

    def test_scales_are_increasing(self):
        sizes = [SCALE_FACTORS[name].persons for name in ("SF1", "SF10", "SF30", "SF100", "SF300")]
        assert sizes == sorted(sizes)

    def test_resolve_unknown(self):
        with pytest.raises(ValueError):
            resolve_scale("SF9000")


class TestGeneration:
    def test_determinism(self, sf1_dataset):
        again = generate("SF1", seed=42)
        assert again.info.num_messages == sf1_dataset.info.num_messages
        assert again.info.num_knows_pairs == sf1_dataset.info.num_knows_pairs
        ours = sf1_dataset.store.table("Person").gather(
            "firstName", np.arange(10)
        )
        theirs = again.store.table("Person").gather("firstName", np.arange(10))
        assert ours.tolist() == theirs.tolist()

    def test_seed_changes_graph(self):
        other = generate("SF1", seed=1)
        base = generate("SF1", seed=42)
        assert (
            other.info.num_messages != base.info.num_messages
            or other.info.num_knows_pairs != base.info.num_knows_pairs
        )

    def test_info_counts_match_store(self, sf1_dataset):
        store, info = sf1_dataset.store, sf1_dataset.info
        assert len(store.table("Person")) == info.num_persons
        assert len(store.table("Message")) == info.num_messages
        assert len(store.table("Forum")) == info.num_forums
        assert info.num_posts + info.num_comments == info.num_messages

    def test_knows_is_symmetric(self, sf1_dataset):
        key = AdjacencyKey("Person", "KNOWS", "Person", Direction.OUT)
        view = sf1_dataset.store.read_view()
        for row in range(0, sf1_dataset.info.num_persons, 7):
            for neighbor in view.neighbors(key, row):
                assert row in view.neighbors(key, int(neighbor)).tolist()

    def test_every_message_has_exactly_one_creator(self, sf1_dataset):
        key = AdjacencyKey("Message", "HAS_CREATOR", "Person", Direction.OUT)
        view = sf1_dataset.store.read_view()
        for row in range(sf1_dataset.info.num_messages):
            assert len(view.neighbors(key, row)) == 1

    def test_posts_have_no_parent_and_comments_have_one(self, sf1_dataset):
        reply = AdjacencyKey("Message", "REPLY_OF", "Message", Direction.OUT)
        view = sf1_dataset.store.read_view()
        is_post = sf1_dataset.store.table("Message").column("isPost").view()
        for row in range(sf1_dataset.info.num_messages):
            parents = view.neighbors(reply, row)
            if is_post[row]:
                assert len(parents) == 0
            else:
                assert len(parents) == 1

    def test_comment_dates_after_parent(self, sf1_dataset):
        reply = AdjacencyKey("Message", "REPLY_OF", "Message", Direction.OUT)
        view = sf1_dataset.store.read_view()
        dates = sf1_dataset.store.table("Message").column("creationDate").view()
        for row in range(sf1_dataset.info.num_messages):
            for parent in view.neighbors(reply, row):
                assert dates[row] > dates[int(parent)]

    def test_dates_inside_window(self, sf1_dataset):
        dates = sf1_dataset.store.table("Message").column("creationDate").view()
        assert dates.min() >= SIM_START
        # Reply chains may run past the window end, but not unboundedly.
        assert dates.max() < SIM_END + (SIM_END - SIM_START)

    def test_posts_are_contained_in_exactly_one_forum(self, sf1_dataset):
        container = AdjacencyKey("Message", "CONTAINER_OF", "Forum", Direction.IN)
        view = sf1_dataset.store.read_view()
        is_post = sf1_dataset.store.table("Message").column("isPost").view()
        for row in range(sf1_dataset.info.num_messages):
            forums = view.neighbors(container, row)
            assert len(forums) == (1 if is_post[row] else 0)

    def test_every_person_located_in_city(self, sf1_dataset):
        located = AdjacencyKey("Person", "IS_LOCATED_IN", "Place", Direction.OUT)
        view = sf1_dataset.store.read_view()
        place_type = sf1_dataset.store.table("Place").column("type").view()
        for row in range(sf1_dataset.info.num_persons):
            cities = view.neighbors(located, row)
            assert len(cities) == 1
            assert place_type[int(cities[0])] == "city"

    def test_place_hierarchy(self, sf1_dataset):
        part_of = AdjacencyKey("Place", "IS_PART_OF", "Place", Direction.OUT)
        view = sf1_dataset.store.read_view()
        table = sf1_dataset.store.table("Place")
        for row in view.all_rows("Place"):
            row = int(row)
            parents = view.neighbors(part_of, row)
            kind = table.get_property(row, "type")
            if kind == "city":
                assert table.get_property(int(parents[0]), "type") == "country"
            elif kind == "country":
                assert table.get_property(int(parents[0]), "type") == "continent"
            else:
                assert len(parents) == 0

    def test_forum_has_moderator(self, sf1_dataset):
        moderator = AdjacencyKey("Forum", "HAS_MODERATOR", "Person", Direction.OUT)
        view = sf1_dataset.store.read_view()
        for row in range(sf1_dataset.info.num_forums):
            assert len(view.neighbors(moderator, row)) == 1

    def test_likes_have_dates_after_message(self, sf1_dataset):
        likes = AdjacencyKey("Message", "LIKES", "Person", Direction.IN)
        view = sf1_dataset.store.read_view()
        adjacency = sf1_dataset.store.adjacency(likes)
        dates = sf1_dataset.store.table("Message").column("creationDate").view()
        checked = 0
        for row in range(0, sf1_dataset.info.num_messages, 13):
            for slot in view.neighbor_slots(likes, row):
                assert adjacency.prop_at("creationDate", int(slot)) > dates[row]
                checked += 1
        assert checked > 0

    def test_first_names_collide(self, sf1_dataset):
        """IC1 needs multiple persons sharing a first name."""
        names = sf1_dataset.store.table("Person").column("firstName").view()
        values, counts = np.unique(np.asarray(names, dtype=str), return_counts=True)
        assert counts.max() >= 2
