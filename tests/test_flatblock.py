"""Tests for the flat (fully materialized) block and its operators."""

import numpy as np
import pytest

from repro.core.flatblock import FlatBlock, sort_key_array
from repro.core.column import Column
from repro.errors import ExecutionError
from repro.types import DataType


def sample() -> FlatBlock:
    return FlatBlock.from_dict(
        {
            "id": (DataType.INT64, [3, 1, 2, 1]),
            "name": (DataType.STRING, ["c", "a", "b", "a"]),
            "score": (DataType.FLOAT64, [0.5, 2.5, 1.5, 3.5]),
        }
    )


class TestConstruction:
    def test_from_columns(self):
        block = FlatBlock.from_columns([Column("x", DataType.INT64, [1, 2])])
        assert block.schema == ["x"]
        assert len(block) == 2

    def test_duplicate_column_rejected(self):
        block = sample()
        with pytest.raises(ExecutionError):
            block.add_array("id", DataType.INT64, np.asarray([0] * 4))

    def test_length_mismatch_rejected(self):
        block = sample()
        with pytest.raises(ExecutionError):
            block.add_array("extra", DataType.INT64, np.asarray([1]))

    def test_unknown_column_raises(self):
        with pytest.raises(ExecutionError):
            sample().array("ghost")

    def test_empty_like(self):
        block = FlatBlock.empty_like([("a", DataType.INT64)])
        assert len(block) == 0 and block.schema == ["a"]


class TestAccounting:
    def test_nbytes_row_oriented(self):
        block = FlatBlock.from_dict({"a": (DataType.INT64, [1, 2, 3])})
        assert block.nbytes == 3 * 1 * FlatBlock.ROW_VALUE_BYTES

    def test_nbytes_includes_string_payload(self):
        block = FlatBlock.from_dict({"s": (DataType.STRING, ["ab", "cdef"])})
        assert block.nbytes == 2 * FlatBlock.ROW_VALUE_BYTES + 6

    def test_columnar_nbytes_smaller_for_narrow_ints(self):
        block = FlatBlock.from_dict({"a": (DataType.INT64, list(range(100)))})
        assert block.columnar_nbytes < block.nbytes


class TestOps:
    def test_take(self):
        out = sample().take(np.asarray([2, 0]))
        assert out.to_pylist(["id"]) == [(2,), (3,)]

    def test_filter(self):
        out = sample().filter(np.asarray([True, False, True, False]))
        assert out.to_pylist(["id"]) == [(3,), (2,)]

    def test_select(self):
        out = sample().select(["name"])
        assert out.schema == ["name"]

    def test_rename(self):
        out = sample().rename({"id": "key"})
        assert out.schema == ["key", "name", "score"]

    def test_sort_single_key(self):
        out = sample().sort([("id", True)])
        assert [r[0] for r in out.to_pylist(["id"])] == [1, 1, 2, 3]

    def test_sort_descending(self):
        out = sample().sort([("id", False)])
        assert [r[0] for r in out.to_pylist(["id"])] == [3, 2, 1, 1]

    def test_sort_multi_key_tiebreak(self):
        out = sample().sort([("name", True), ("score", False)])
        assert out.to_pylist(["name", "score"]) == [
            ("a", 3.5), ("a", 2.5), ("b", 1.5), ("c", 0.5),
        ]

    def test_sort_stability(self):
        block = FlatBlock.from_dict(
            {"k": (DataType.INT64, [1, 1, 1]), "tag": (DataType.INT64, [10, 20, 30])}
        )
        out = block.sort([("k", True)])
        assert [r[0] for r in out.to_pylist(["tag"])] == [10, 20, 30]

    def test_sort_string_with_none(self):
        block = FlatBlock.from_dict({"s": (DataType.STRING, ["b", None, "a"])})
        out = block.sort([("s", True)])
        assert out.to_pylist(["s"]) == [(None,), ("a",), ("b",)]

    def test_limit(self):
        assert len(sample().limit(2)) == 2
        assert len(sample().limit(10)) == 4

    def test_distinct(self):
        out = sample().distinct(["name"])
        assert out.to_pylist(["name"]) == [("c",), ("a",), ("b",)]

    def test_concat(self):
        block = sample()
        out = block.concat(block)
        assert len(out) == 8

    def test_concat_schema_mismatch(self):
        with pytest.raises(ExecutionError):
            sample().concat(sample().select(["id"]))

    def test_group_indices(self):
        groups = sample().group_indices(["name"])
        assert groups[("a",)].tolist() == [1, 3]

    def test_rows_and_pylist_agree(self):
        block = sample()
        assert list(block.rows()) == block.to_pylist()

    def test_to_pylist_native_types(self):
        row = sample().to_pylist()[0]
        assert isinstance(row[0], int)
        assert isinstance(row[2], float)


class TestSortKeyArray:
    def test_descending_int_negates(self):
        out = sort_key_array(np.asarray([1, 3, 2]), DataType.INT64, ascending=False)
        assert out.tolist() == [-1, -3, -2]

    def test_string_codes_ascend(self):
        values = np.asarray(["b", "a"], dtype=object)
        out = sort_key_array(values, DataType.STRING, True)
        assert out[0] > out[1]

    def test_null_int_stays_extreme_under_negation(self):
        from repro.types import NULL_INT

        out = sort_key_array(np.asarray([NULL_INT, 5]), DataType.INT64, False)
        assert out[0] == NULL_INT  # wraps onto itself
