"""Tests for the concurrency-control layer: version manager, MV2PL locks,
copy-on-write snapshots, and transactions (paper §5)."""

import threading

import numpy as np
import pytest

from repro.errors import LockTimeout, TransactionError
from repro.storage.catalog import AdjacencyKey, Direction
from repro.storage.graph import VertexRef
from repro.storage.memory_pool import MemoryPool
from repro.txn import LockManager, SnapshotOverlay, TransactionManager, VersionManager
from repro.txn.snapshot import VertexSnapshot


class TestVersionManager:
    def test_starts_at_zero(self):
        assert VersionManager().current() == 0

    def test_next_commit_increments(self):
        vm = VersionManager()
        assert vm.next_commit() == 1
        assert vm.next_commit() == 2
        assert vm.current() == 2

    def test_thread_safety(self):
        vm = VersionManager()
        results = []

        def worker():
            for _ in range(100):
                results.append(vm.next_commit())

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(results)) == 400


class TestLockManager:
    def test_acquire_and_release(self):
        lm = LockManager()
        keys = lm.acquire_all([("Person", 1), ("Person", 0)])
        assert keys == [("Person", 0), ("Person", 1)]  # sorted
        assert lm.is_locked(("Person", 0))
        lm.release_all(keys)
        assert not lm.is_locked(("Person", 0))

    def test_duplicate_keys_deduplicated(self):
        lm = LockManager()
        keys = lm.acquire_all([("A", 1), ("A", 1)])
        assert keys == [("A", 1)]
        lm.release_all(keys)

    def test_conflict_times_out(self):
        lm = LockManager(default_timeout=0.05)
        held = lm.acquire_all([("A", 1)])
        with pytest.raises(LockTimeout):
            lm.acquire_all([("A", 1)], timeout=0.05)
        lm.release_all(held)

    def test_timeout_releases_partial(self):
        lm = LockManager(default_timeout=0.05)
        held = lm.acquire_all([("B", 2)])
        with pytest.raises(LockTimeout):
            lm.acquire_all([("A", 1), ("B", 2)], timeout=0.05)
        # ("A", 1) must have been released on failure.
        assert not lm.is_locked(("A", 1))
        lm.release_all(held)


class TestSnapshotOverlay:
    def test_resolve_returns_pre_image(self, micro_store):
        pool = MemoryPool()
        overlay = SnapshotOverlay(pool)
        snapshot = VertexSnapshot(micro_store.table("Person"), 0, pool)
        overlay.record(snapshot, commit_version=5)
        # A reader at version 4 must see the value from before commit 5.
        overridden, value = overlay.resolve("Person", 0, "age", 4)
        assert overridden and value == 30
        # A reader at version 5 sees the live table.
        overridden, _ = overlay.resolve("Person", 0, "age", 5)
        assert not overridden

    def test_resolve_picks_oldest_newer_commit(self, micro_store):
        pool = MemoryPool()
        overlay = SnapshotOverlay(pool)
        table = micro_store.table("Person")
        overlay.record(VertexSnapshot(table, 0, pool), commit_version=5)
        table.set_property(0, "age", 31)
        overlay.record(VertexSnapshot(table, 0, pool), commit_version=9)
        _, v_before_5 = overlay.resolve("Person", 0, "age", 2)
        _, v_between = overlay.resolve("Person", 0, "age", 7)
        assert v_before_5 == 30
        assert v_between == 31

    def test_string_properties_snapshotted(self, micro_store):
        pool = MemoryPool()
        overlay = SnapshotOverlay(pool)
        overlay.record(VertexSnapshot(micro_store.table("Person"), 1, pool), 3)
        overridden, value = overlay.resolve("Person", 1, "firstName", 1)
        assert overridden and value == "B"

    def test_prune_releases_buffers(self, micro_store):
        pool = MemoryPool()
        overlay = SnapshotOverlay(pool)
        overlay.record(VertexSnapshot(micro_store.table("Person"), 0, pool), 2)
        overlay.record(VertexSnapshot(micro_store.table("Person"), 1, pool), 8)
        released = overlay.prune(before_version=5)
        assert released == 1
        assert overlay.snapshot_count == 1
        assert pool.pooled_buffers >= 1


class TestTransactions:
    def test_add_vertex_commit(self, micro_store):
        manager = TransactionManager(micro_store)
        txn = manager.begin()
        handle = txn.add_vertex("Person", {"id": 50, "firstName": "N", "age": 20})
        version = txn.commit()
        assert version == 1
        ref = txn.staged_vertex(handle)
        assert micro_store.table("Person").row_for_key(50) == ref.row

    def test_new_vertex_invisible_to_old_snapshot(self, micro_store):
        manager = TransactionManager(micro_store)
        old_view = manager.read_view()
        txn = manager.begin()
        txn.add_vertex("Person", {"id": 51, "firstName": "M", "age": 21})
        txn.commit()
        assert old_view.vertex_by_key("Person", 51) is None
        assert manager.read_view().vertex_by_key("Person", 51) is not None

    def test_property_write_snapshot_isolation(self, micro_store):
        manager = TransactionManager(micro_store)
        old_view = manager.read_view()
        txn = manager.begin()
        txn.set_vertex_property("Person", 0, "age", 99)
        txn.commit()
        assert old_view.get_property("Person", 0, "age") == 30
        assert manager.read_view().get_property("Person", 0, "age") == 99

    def test_edge_insert_snapshot_isolation(self, micro_store):
        manager = TransactionManager(micro_store)
        key = AdjacencyKey("Person", "KNOWS", "Person", Direction.OUT)
        old_view = manager.read_view()
        txn = manager.begin()
        txn.add_edge("KNOWS", VertexRef("Person", 0), VertexRef("Person", 3), {"since": 1})
        txn.commit()
        assert 3 not in old_view.neighbors(key, 0).tolist()
        assert 3 in manager.read_view().neighbors(key, 0).tolist()

    def test_edge_delete_snapshot_isolation(self, micro_store):
        manager = TransactionManager(micro_store)
        key = AdjacencyKey("Person", "KNOWS", "Person", Direction.OUT)
        # First transactional insert allocates version stamps.
        txn0 = manager.begin()
        txn0.add_edge("KNOWS", VertexRef("Person", 0), VertexRef("Person", 3), {"since": 1})
        txn0.commit()
        old_view = manager.read_view()
        txn = manager.begin()
        txn.remove_edge("KNOWS", VertexRef("Person", 0), VertexRef("Person", 1))
        txn.commit()
        assert 1 in old_view.neighbors(key, 0).tolist()
        assert 1 not in manager.read_view().neighbors(key, 0).tolist()

    def test_edge_to_staged_vertex(self, micro_store):
        manager = TransactionManager(micro_store)
        txn = manager.begin()
        handle = txn.add_vertex("Person", {"id": 60, "firstName": "X", "age": 1})
        txn.add_edge("KNOWS", handle, VertexRef("Person", 0), {"since": 7})
        txn.commit()
        key = AdjacencyKey("Person", "KNOWS", "Person", Direction.OUT)
        new_row = micro_store.table("Person").row_for_key(60)
        assert 0 in manager.read_view().neighbors(key, new_row).tolist()

    def test_abort_applies_nothing(self, micro_store):
        manager = TransactionManager(micro_store)
        txn = manager.begin()
        txn.add_vertex("Person", {"id": 70, "firstName": "Z", "age": 2})
        txn.set_vertex_property("Person", 0, "age", 1)
        txn.abort()
        assert micro_store.table("Person").try_row_for_key(70) is None
        assert micro_store.table("Person").get_property(0, "age") == 30

    def test_finished_transaction_rejects_staging(self, micro_store):
        manager = TransactionManager(micro_store)
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.add_vertex("Person", {"id": 80})

    def test_write_set_covers_endpoints(self, micro_store):
        manager = TransactionManager(micro_store)
        txn = manager.begin()
        txn.add_edge("KNOWS", VertexRef("Person", 2), VertexRef("Person", 0))
        txn.set_vertex_property("Person", 4, "age", 7)
        assert txn.write_set() == [("Person", 0), ("Person", 2), ("Person", 4)]

    def test_lock_conflict_between_transactions(self, micro_store):
        manager = TransactionManager(micro_store)
        first = manager.begin()
        first.set_vertex_property("Person", 0, "age", 1)
        first.lock_write_set()
        second = manager.begin()
        second.set_vertex_property("Person", 0, "age", 2)
        with pytest.raises(LockTimeout):
            second.lock_write_set(timeout=0.05)
        first.commit()

    def test_concurrent_disjoint_writers(self, micro_store):
        manager = TransactionManager(micro_store)
        errors: list[Exception] = []

        def writer(row: int, value: int) -> None:
            try:
                txn = manager.begin()
                txn.set_vertex_property("Person", row, "age", value)
                txn.commit()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(row, row * 10)) for row in range(5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert manager.versions.current() == 5
        for row in range(5):
            assert micro_store.table("Person").get_property(row, "age") == row * 10

    def test_prune_snapshots(self, micro_store):
        manager = TransactionManager(micro_store)
        txn = manager.begin()
        txn.set_vertex_property("Person", 0, "age", 1)
        txn.commit()
        assert manager.overlay.snapshot_count == 1
        assert manager.prune_snapshots() == 1
        assert manager.overlay.snapshot_count == 0
