"""Documentation gates: every public item carries a docstring, and the
repository's promised documents exist with their promised content."""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

ROOT = Path(repro.__file__).resolve().parent
REPO = ROOT.parent.parent


def iter_public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    undocumented = [m.__name__ for m in iter_public_modules() if not m.__doc__]
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_every_public_class_and_function_is_documented():
    undocumented: list[str] = []
    for module in iter_public_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its definition site
            if not inspect.getdoc(obj):
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_public_methods_are_documented():
    from repro.core import FBlock, FTree, FlatBlock
    from repro.engine import GraphEngineService
    from repro.storage import AdjacencyList, GraphStore

    undocumented: list[str] = []
    for cls in (FBlock, FTree, FlatBlock, GraphEngineService, GraphStore, AdjacencyList):
        for name, member in vars(cls).items():
            if name.startswith("_"):
                continue
            func = member.fget if isinstance(member, property) else member
            if callable(func) and not inspect.getdoc(func):
                undocumented.append(f"{cls.__name__}.{name}")
    assert not undocumented, f"undocumented methods: {undocumented}"


@pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
def test_required_documents_exist(name):
    assert (REPO / name).is_file(), f"{name} missing"


def test_design_covers_every_experiment():
    text = (REPO / "DESIGN.md").read_text()
    for exhibit in ("Fig 2", "Fig 3", "Fig 11", "Fig 12", "Fig 13", "Fig 14",
                    "Fig 15", "Table 2", "Table 3", "Table 4"):
        assert exhibit in text, f"DESIGN.md lacks the {exhibit} index entry"


def test_experiments_covers_every_exhibit():
    text = (REPO / "EXPERIMENTS.md").read_text()
    for exhibit in ("Figure 2", "Figure 3", "Figure 11", "Figure 12", "Figure 13",
                    "Figure 14", "Figure 15", "Table 2", "Table 3", "Table 4"):
        assert exhibit in text, f"EXPERIMENTS.md lacks {exhibit}"


def test_every_bench_module_exists_for_each_exhibit():
    benches = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
    expected = {
        "bench_fig02_query_runtimes.py",
        "bench_fig03_operator_breakdown.py",
        "bench_fig11_latency_ablation.py",
        "bench_fig12_tail_latency.py",
        "bench_fig13_scalability.py",
        "bench_fig14_stability.py",
        "bench_fig15_system_latency.py",
        "bench_table2_memory.py",
        "bench_table3_throughput.py",
        "bench_table4_system_throughput.py",
    }
    missing = expected - benches
    assert not missing, f"missing bench modules: {missing}"
