"""Edge cases and failure injection across the stack: empty graphs,
missing seeks, degenerate pipelines, explain output."""

import numpy as np
import pytest

from repro import GES, EngineConfig, GraphStore
from repro.engine import open_all_variants
from repro.baselines import VolcanoEngine
from repro.errors import ExecutionError, ExpressionError, PlanError
from repro.exec import execute_factorized, execute_flat
from repro.plan import (
    AggSpec,
    Aggregate,
    Col,
    Expand,
    Filter,
    GetProperty,
    Limit,
    LogicalPlan,
    NodeByIdSeek,
    NodeScan,
    OrderBy,
    Project,
    lit,
    optimize,
    param,
)
from repro.storage.catalog import Direction

from tests.conftest import build_micro_schema


@pytest.fixture
def empty_store():
    return GraphStore(build_micro_schema())


def run_all(store, plan, params=None):
    view = store.read_view()
    flat = execute_flat(plan, view, params).rows
    fact = execute_factorized(plan, view, params).rows
    fused = execute_factorized(optimize(plan), view, params).rows
    volcano = VolcanoEngine(store).execute(plan, params).rows
    assert flat == fact == fused == volcano
    return flat


class TestEmptyGraph:
    def test_scan_empty_label(self, empty_store):
        assert run_all(empty_store, LogicalPlan([NodeScan("p", "Person")])) == []

    def test_seek_missing_vertex(self, empty_store):
        plan = LogicalPlan([NodeByIdSeek("p", "Person", lit(1))])
        assert run_all(empty_store, plan) == []

    def test_expand_from_empty(self, empty_store):
        plan = LogicalPlan(
            [NodeScan("p", "Person"), Expand("p", "f", "KNOWS", Direction.OUT)]
        )
        assert run_all(empty_store, plan) == []

    def test_multi_hop_from_empty(self, empty_store):
        plan = LogicalPlan(
            [
                NodeScan("p", "Person"),
                Expand("p", "f", "KNOWS", Direction.OUT, max_hops=2, exclude_start=True),
            ]
        )
        assert run_all(empty_store, plan) == []

    def test_global_aggregate_over_empty(self, empty_store):
        plan = LogicalPlan(
            [NodeScan("p", "Person"), Aggregate([], [AggSpec("n", "count")])]
        )
        assert run_all(empty_store, plan) == [(0,)]

    def test_grouped_aggregate_over_empty(self, empty_store):
        plan = LogicalPlan(
            [
                NodeScan("p", "Person"),
                GetProperty("p", "firstName", "name"),
                Aggregate(["name"], [AggSpec("n", "count")]),
            ]
        )
        assert run_all(empty_store, plan) == []

    def test_order_limit_over_empty(self, empty_store):
        plan = LogicalPlan(
            [
                NodeScan("p", "Person"),
                GetProperty("p", "id", "pid"),
                Project([("pid", Col("pid"))]),
                OrderBy([("pid", True)]),
                Limit(5),
            ]
        )
        assert run_all(empty_store, plan) == []


class TestDegeneratePipelines:
    def test_filter_everything_away_then_expand(self, micro_store):
        plan = LogicalPlan(
            [
                NodeScan("p", "Person"),
                GetProperty("p", "age", "age"),
                Filter(Col("age") > lit(1000)),
                Expand("p", "f", "KNOWS", Direction.OUT),
                GetProperty("f", "firstName", "name"),
            ],
            returns=["name"],
        )
        assert run_all(micro_store, plan) == []

    def test_limit_zero(self, micro_store):
        plan = LogicalPlan([NodeScan("p", "Person"), Limit(0)])
        assert run_all(micro_store, plan) == []

    def test_limit_larger_than_input(self, micro_store):
        plan = LogicalPlan([NodeScan("p", "Person"), Limit(100)])
        assert len(run_all(micro_store, plan)) == 5

    def test_double_expand_same_edge(self, micro_store):
        plan = LogicalPlan(
            [
                NodeByIdSeek("p", "Person", lit(0)),
                Expand("p", "f", "KNOWS", Direction.OUT),
                Expand("f", "g", "KNOWS", Direction.OUT),
                GetProperty("g", "id", "gid"),
                Project([("gid", Col("gid"))]),
                OrderBy([("gid", True)]),
            ],
            returns=["gid"],
        )
        # friends-of-friends WITHOUT dedup: paths (0,1,0),(0,1,3),(0,2,0),(0,2,4)
        assert run_all(micro_store, plan) == [(0,), (0,), (3,), (4,)]

    def test_unbound_param_raises(self, micro_store):
        plan = LogicalPlan([NodeByIdSeek("p", "Person", param("missing"))])
        with pytest.raises(ExpressionError):
            execute_flat(plan, micro_store.read_view(), {})

    def test_filter_on_missing_column(self, micro_store):
        plan = LogicalPlan([NodeScan("p", "Person"), Filter(Col("ghost") > lit(0))])
        with pytest.raises(Exception):
            execute_flat(plan, micro_store.read_view())


class TestExplain:
    def test_explain_marks_fusions(self, micro_store):
        engine = GES(micro_store, EngineConfig.ges_f_star())
        text = engine.explain(
            "MATCH (p:Person)-[:KNOWS]->(f) WHERE id(p) = 0 AND f.age > 20 "
            "RETURN id(f) AS fid ORDER BY fid LIMIT 3"
        )
        assert "[fused]" in text
        assert "GES_f*" in text

    def test_explain_unfused_variant(self, micro_store):
        engine = GES(micro_store, EngineConfig.ges_f())
        text = engine.explain(
            "MATCH (p:Person) RETURN id(p) AS pid ORDER BY pid LIMIT 3"
        )
        assert "TopK" not in text
        assert "OrderBy" in text
