"""Tests for the shared expansion machinery (vectorized fast paths,
multi-hop BFS, pushdown application, optional padding)."""

import numpy as np
import pytest

from repro.exec.expand_util import (
    ExpandBatch,
    _multi_hop_per_source,
    _vectorized_single_hop,
    expand_batch,
    resolve_expand_keys,
)
from repro.plan import Col, Expand, lit
from repro.storage.catalog import AdjacencyKey, Direction
from repro.types import NULL_INT

KNOWS = AdjacencyKey("Person", "KNOWS", "Person", Direction.OUT)


def batch(micro_store, op, rows, from_label="Person", to_label="Person", params=None):
    view = micro_store.read_view()
    return expand_batch(view, op, np.asarray(rows, dtype=np.int64), from_label,
                        to_label, params or {})


class TestVectorizedSingleHop:
    def test_matches_loop_path(self, micro_store):
        view = micro_store.read_view()
        out = _vectorized_single_hop(view, KNOWS, np.asarray([0, 1, 3]), {})
        assert out.counts.tolist() == [2, 2, 1]
        assert out.neighbors.tolist() == [1, 2, 3, 0, 1]

    def test_out_of_range_sources(self, micro_store):
        view = micro_store.read_view()
        out = _vectorized_single_hop(view, KNOWS, np.asarray([0, 999]), {})
        assert out.counts.tolist() == [2, 0]

    def test_null_sources_skipped_via_validity(self, micro_store):
        view = micro_store.read_view()
        op = Expand("p", "f", "KNOWS", Direction.OUT)
        out = expand_batch(
            view, op, np.asarray([NULL_INT, 0], dtype=np.int64), "Person",
            "Person", {}, from_validity=np.asarray([False, True]),
        )
        assert out.counts.tolist() == [0, 2]
        assert out.neighbors.tolist() == [1, 2]

    def test_edge_props_aligned(self, micro_store):
        view = micro_store.read_view()
        out = _vectorized_single_hop(view, KNOWS, np.asarray([0]), {"since": "since"})
        dtype, values, validity = out.extra["since"]
        assert values.tolist() == [10, 20]
        assert validity is None

    def test_empty_batch(self, micro_store):
        view = micro_store.read_view()
        out = _vectorized_single_hop(view, KNOWS, np.empty(0, dtype=np.int64),
                                     {"since": "since"})
        assert out.total == 0
        assert out.extra["since"][1].tolist() == []


class TestExpandBatch:
    def test_fallback_after_tombstone(self, micro_store):
        from repro.storage.graph import VertexRef

        micro_store.remove_edge("KNOWS", VertexRef("Person", 0), VertexRef("Person", 1))
        op = Expand("p", "f", "KNOWS", Direction.OUT)
        out = batch(micro_store, op, [0])
        assert out.neighbors.tolist() == [2]

    def test_neighbor_props_gathered(self, micro_store):
        op = Expand("p", "f", "KNOWS", Direction.OUT, neighbor_props={"age": "age"})
        out = batch(micro_store, op, [0])
        assert out.extra["age"][1].tolist() == [25, 35]

    def test_neighbor_filter_recomputes_counts(self, micro_store):
        op = Expand(
            "p", "f", "KNOWS", Direction.OUT,
            neighbor_props={"age": "age"},
            neighbor_filter=Col("age") > lit(26),
        )
        out = batch(micro_store, op, [0, 1])
        # p0 keeps only person 2 (35); p1 keeps only person 0 (30).
        assert out.counts.tolist() == [1, 1]
        assert out.neighbors.tolist() == [2, 0]

    def test_optional_padding(self, micro_store):
        op = Expand("p", "m", "HAS_CREATOR", Direction.IN, to_label="Message",
                    optional=True)
        out = batch(micro_store, op, [0, 1], to_label="Message")
        assert out.counts.tolist() == [1, 1]
        # The padded row is NULL via validity, not a sentinel row id.
        assert out.validity.tolist() == [False, True]
        assert out.neighbors[1] == 0  # message m0 by person 1

    def test_optional_padding_fills_extra_columns(self, micro_store):
        op = Expand("p", "f", "KNOWS", Direction.OUT, optional=True,
                    edge_props={"since": "since"})
        # Give person 0 a filter that kills everything via neighbor_filter.
        op = Expand(
            "p", "f", "KNOWS", Direction.OUT, optional=True,
            edge_props={"since": "since"},
            neighbor_props={"age": "age"},
            neighbor_filter=Col("age") > lit(100),
        )
        out = batch(micro_store, op, [0])
        assert out.counts.tolist() == [1]
        assert out.validity.tolist() == [False]
        assert out.extra["age"][2].tolist() == [False]


class TestMultiHop:
    def test_vectorized_and_generic_agree(self, micro_store):
        view = micro_store.read_view()
        op = Expand("p", "f", "KNOWS", Direction.OUT, min_hops=1, max_hops=2,
                    exclude_start=True)
        fast = _multi_hop_per_source(view, [KNOWS], 0, op)
        assert fast.tolist() == [1, 2, 3, 4]

    def test_exact_depth(self, micro_store):
        view = micro_store.read_view()
        op = Expand("p", "f", "KNOWS", Direction.OUT, min_hops=2, max_hops=2,
                    exclude_start=True)
        assert _multi_hop_per_source(view, [KNOWS], 0, op).tolist() == [3, 4]

    def test_start_never_rereached(self, micro_store):
        view = micro_store.read_view()
        op = Expand("p", "f", "KNOWS", Direction.OUT, min_hops=1, max_hops=3,
                    exclude_start=True)
        reached = _multi_hop_per_source(view, [KNOWS], 0, op).tolist()
        assert 0 not in reached

    def test_isolated_vertex(self, micro_store):
        ref = micro_store.add_vertex("Person", {"id": 500, "firstName": "L", "age": 1})
        view = micro_store.read_view()
        op = Expand("p", "f", "KNOWS", Direction.OUT, max_hops=2, exclude_start=True)
        assert _multi_hop_per_source(view, [KNOWS], ref.row, op).tolist() == []


class TestResolveKeys:
    def test_in_direction(self, micro_store):
        view = micro_store.read_view()
        op = Expand("p", "m", "HAS_CREATOR", Direction.IN, to_label="Message")
        keys = resolve_expand_keys(view, op, "Person")
        assert keys == [AdjacencyKey("Person", "HAS_CREATOR", "Message", Direction.IN)]
