"""Cross-engine equivalence: flat, factorized, fused, and Volcano must agree.

Random pipelines are generated over the micro schema with hypothesis; each
one runs on all four engines (the fused variant through the full optimizer)
and the result row lists must be identical.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.volcano import VolcanoEngine
from repro.exec import execute_factorized, execute_flat
from repro.plan import (
    AggSpec,
    Aggregate,
    BoolOp,
    Col,
    Distinct,
    Expand,
    Filter,
    GetProperty,
    Limit,
    LogicalPlan,
    NodeByIdSeek,
    NodeScan,
    OrderBy,
    Project,
    lit,
    optimize,
)
from repro.storage.catalog import Direction

from tests.conftest import build_micro_store

STORE = build_micro_store()
VOLCANO = VolcanoEngine(STORE)


def run_everywhere(plan: LogicalPlan, params=None) -> None:
    view = STORE.read_view()
    flat = execute_flat(plan, view, params).rows
    fact = execute_factorized(plan, view, params).rows
    fused = execute_factorized(optimize(plan), view, params).rows
    volcano = VOLCANO.execute(plan, params).rows
    assert fact == flat, f"factorized != flat: {fact} vs {flat}"
    assert fused == flat, f"fused != flat: {fused} vs {flat}"
    assert volcano == flat, f"volcano != flat: {volcano} vs {flat}"


# -- random plan strategy ---------------------------------------------------------


@st.composite
def random_plans(draw) -> tuple[LogicalPlan, dict]:
    ops = []
    start_kind = draw(st.sampled_from(["seek", "scan"]))
    if start_kind == "seek":
        ops.append(NodeByIdSeek("p", "Person", lit(draw(st.integers(0, 5)))))
    else:
        ops.append(NodeScan("p", "Person"))

    current_var, current_label = "p", "Person"
    fetched: list[tuple[str, str]] = []  # (column, dtype kind)

    for step in range(draw(st.integers(0, 3))):
        choice = draw(st.sampled_from(["knows", "messages", "prop", "filter"]))
        if choice == "knows" and current_label == "Person":
            hops = draw(st.sampled_from([(1, 1), (1, 2), (2, 2)]))
            to_var = f"f{step}"
            ops.append(
                Expand(current_var, to_var, "KNOWS", Direction.OUT,
                       min_hops=hops[0], max_hops=hops[1],
                       exclude_start=hops[1] > 1)
            )
            current_var, current_label = to_var, "Person"
        elif choice == "messages" and current_label == "Person":
            to_var = f"m{step}"
            ops.append(
                Expand(current_var, to_var, "HAS_CREATOR", Direction.IN,
                       to_label="Message")
            )
            current_var, current_label = to_var, "Message"
        elif choice == "prop":
            if current_label == "Person":
                prop = draw(st.sampled_from(["age", "id"]))
            else:
                prop = draw(st.sampled_from(["length", "id"]))
            out = f"{current_var}_{prop}"
            if all(c != out for c, _ in fetched):
                ops.append(GetProperty(current_var, prop, out))
                fetched.append((out, "int"))
        elif choice == "filter" and fetched:
            column = draw(st.sampled_from([c for c, _ in fetched]))
            threshold = draw(st.integers(0, 150))
            direction = draw(st.booleans())
            expr = Col(column) > lit(threshold) if direction else Col(column) <= lit(threshold)
            ops.append(Filter(expr))

    # A deterministic tail: fetch an id, sort by it, maybe limit/distinct.
    ops.append(GetProperty(current_var, "id", "sort_id"))
    tail = draw(st.sampled_from(["sort", "sort_limit", "distinct", "aggregate"]))
    if tail == "sort":
        ops.append(OrderBy([("sort_id", draw(st.booleans()))]))
        returns = ["sort_id"]
    elif tail == "sort_limit":
        ops.append(OrderBy([("sort_id", draw(st.booleans()))]))
        ops.append(Limit(draw(st.integers(1, 5))))
        returns = ["sort_id"]
    elif tail == "distinct":
        ops.append(Distinct(["sort_id"]))
        ops.append(OrderBy([("sort_id", True)]))
        returns = ["sort_id"]
    else:
        ops.append(Aggregate([], [AggSpec("n", "count"),
                                  AggSpec("lo", "min", "sort_id")]))
        returns = ["n", "lo"]
    return LogicalPlan(ops, returns=returns), {}


@settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(random_plans())
def test_random_plans_agree(plan_and_params):
    plan, params = plan_and_params
    run_everywhere(plan, params)


# -- targeted equivalence scenarios ---------------------------------------------------


def test_paper_figure8_query_on_all_engines():
    plan = LogicalPlan(
        [
            NodeByIdSeek("p", "Person", lit(0)),
            Expand("p", "f", "KNOWS", Direction.OUT, max_hops=2, exclude_start=True),
            Expand("f", "msg", "HAS_CREATOR", Direction.IN, to_label="Message"),
            GetProperty("f", "id", "fid"),
            GetProperty("msg", "id", "mid"),
            GetProperty("msg", "length", "len"),
            Filter(Col("len") > lit(125)),
            Project([("fid", Col("fid")), ("mid", Col("mid")), ("len", Col("len"))]),
            OrderBy([("len", False), ("fid", True)]),
            Limit(2),
        ],
        returns=["fid", "mid", "len"],
    )
    run_everywhere(plan)


def test_grouped_aggregate_on_all_engines():
    plan = LogicalPlan(
        [
            NodeScan("p", "Person"),
            GetProperty("p", "firstName", "name"),
            Expand("p", "m", "HAS_CREATOR", Direction.IN, to_label="Message"),
            Aggregate(["name"], [AggSpec("n", "count")]),
            OrderBy([("n", False), ("name", True)]),
        ],
        returns=["name", "n"],
    )
    run_everywhere(plan)


def test_multi_node_conjunction_filter_on_all_engines():
    plan = LogicalPlan(
        [
            NodeScan("m", "Message"),
            GetProperty("m", "length", "len"),
            Expand("m", "t", "HAS_TAG", Direction.OUT, to_label="Tag"),
            GetProperty("t", "name", "tag"),
            Filter(BoolOp("and", [Col("len") > lit(100), Col("tag") == lit("x")])),
            GetProperty("m", "id", "mid"),
            Project([("mid", Col("mid")), ("tag", Col("tag"))]),
            OrderBy([("mid", True)]),
        ],
        returns=["mid", "tag"],
    )
    run_everywhere(plan)


def test_optional_expand_on_all_engines():
    plan = LogicalPlan(
        [
            NodeScan("p", "Person"),
            Expand("p", "m", "HAS_CREATOR", Direction.IN, to_label="Message",
                   optional=True),
            GetProperty("p", "id", "pid"),
            GetProperty("m", "id", "mid"),
            Project([("pid", Col("pid")), ("mid", Col("mid"))]),
            OrderBy([("pid", True), ("mid", True)]),
        ],
        returns=["pid", "mid"],
    )
    view = STORE.read_view()
    flat = execute_flat(plan, view).rows
    fact = execute_factorized(plan, view).rows
    volcano = VOLCANO.execute(plan).rows
    assert flat == fact == volcano
    assert (0, None) in flat  # person 0 authored nothing
