"""Per-operator tests of the flat executor on the micro graph."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec import execute_flat
from repro.plan import (
    AggSpec,
    Aggregate,
    Col,
    Distinct,
    Expand,
    Filter,
    GetProperty,
    Limit,
    LogicalPlan,
    NodeByIdSeek,
    NodeByRows,
    NodeScan,
    OrderBy,
    Project,
    lit,
    param,
)
from repro.storage.catalog import Direction


def run(store, ops, returns=None, params=None):
    return execute_flat(LogicalPlan(ops, returns=returns), store.read_view(), params)


class TestSources:
    def test_seek_found(self, micro_store):
        result = run(micro_store, [NodeByIdSeek("p", "Person", lit(3))])
        assert result.rows == [(3,)]

    def test_seek_missing_is_empty(self, micro_store):
        result = run(micro_store, [NodeByIdSeek("p", "Person", lit(999))])
        assert result.rows == []

    def test_seek_with_param(self, micro_store):
        result = run(
            micro_store, [NodeByIdSeek("p", "Person", param("k"))], params={"k": 2}
        )
        assert result.rows == [(2,)]

    def test_scan(self, micro_store):
        result = run(micro_store, [NodeScan("p", "Person")])
        assert sorted(r[0] for r in result.rows) == [0, 1, 2, 3, 4]

    def test_node_by_rows(self, micro_store):
        result = run(
            micro_store,
            [NodeByRows("p", "Person", "rows")],
            params={"rows": np.asarray([4, 1])},
        )
        assert [r[0] for r in result.rows] == [4, 1]

    def test_mid_pipeline_source_rejected(self, micro_store):
        with pytest.raises(ExecutionError):
            run(micro_store, [Filter(Col("x") > lit(0))])


class TestExpand:
    def test_single_hop(self, micro_store):
        result = run(
            micro_store,
            [NodeByIdSeek("p", "Person", lit(0)), Expand("p", "f", "KNOWS", Direction.OUT)],
        )
        assert sorted(r[1] for r in result.rows) == [1, 2]

    def test_replication(self, micro_store):
        # Two persons expand together: rows multiply per neighbor (Fig. 4).
        result = run(
            micro_store,
            [
                NodeByRows("p", "Person", "rows"),
                Expand("p", "f", "KNOWS", Direction.OUT),
            ],
            params={"rows": np.asarray([0, 1])},
        )
        assert len(result.rows) == 2 + 2  # p0 has 2 friends, p1 has 2

    def test_in_direction(self, micro_store):
        result = run(
            micro_store,
            [
                NodeByIdSeek("p", "Person", lit(2)),
                Expand("p", "m", "HAS_CREATOR", Direction.IN, to_label="Message"),
            ],
        )
        assert sorted(r[1] for r in result.rows) == [1, 2]

    def test_edge_props(self, micro_store):
        result = run(
            micro_store,
            [
                NodeByIdSeek("p", "Person", lit(0)),
                Expand("p", "f", "KNOWS", Direction.OUT, edge_props={"since": "since"}),
            ],
            returns=["f", "since"],
        )
        assert sorted(result.rows) == [(1, 10), (2, 20)]

    def test_multi_hop_excludes_start_and_dedups(self, micro_store):
        result = run(
            micro_store,
            [
                NodeByIdSeek("p", "Person", lit(0)),
                Expand("p", "f", "KNOWS", Direction.OUT, max_hops=2, exclude_start=True),
            ],
            returns=["f"],
        )
        assert sorted(r[0] for r in result.rows) == [1, 2, 3, 4]

    def test_exact_distance_two(self, micro_store):
        result = run(
            micro_store,
            [
                NodeByIdSeek("p", "Person", lit(0)),
                Expand("p", "f", "KNOWS", Direction.OUT, min_hops=2, max_hops=2,
                       exclude_start=True),
            ],
            returns=["f"],
        )
        assert sorted(r[0] for r in result.rows) == [3, 4]

    def test_optional_expand_emits_null(self, micro_store):
        # Person 0 created no messages.
        result = run(
            micro_store,
            [
                NodeByIdSeek("p", "Person", lit(0)),
                Expand("p", "m", "HAS_CREATOR", Direction.IN, to_label="Message",
                       optional=True),
            ],
            returns=["m"],
        )
        assert result.rows == [(None,)]


class TestScalarOps:
    def test_get_property(self, micro_store):
        result = run(
            micro_store,
            [NodeByIdSeek("p", "Person", lit(1)), GetProperty("p", "firstName", "n")],
            returns=["n"],
        )
        assert result.rows == [("B",)]

    def test_filter(self, micro_store):
        result = run(
            micro_store,
            [
                NodeScan("p", "Person"),
                GetProperty("p", "age", "age"),
                Filter(Col("age") > lit(28)),
            ],
            returns=["p"],
        )
        assert sorted(r[0] for r in result.rows) == [0, 2, 4]

    def test_project_computed(self, micro_store):
        result = run(
            micro_store,
            [
                NodeByIdSeek("p", "Person", lit(0)),
                GetProperty("p", "age", "age"),
                Project([("double", Col("age") * lit(2))]),
            ],
        )
        assert result.rows == [(60,)]

    def test_order_by_limit(self, micro_store):
        result = run(
            micro_store,
            [
                NodeScan("m", "Message"),
                GetProperty("m", "length", "len"),
                OrderBy([("len", False)]),
                Limit(2),
            ],
            returns=["len"],
        )
        assert result.rows == [(200,), (140,)]

    def test_distinct(self, micro_store):
        result = run(
            micro_store,
            [
                NodeScan("p", "Person"),
                GetProperty("p", "firstName", "n"),
                Distinct(["n"]),
            ],
        )
        assert sorted(r[0] for r in result.rows) == ["A", "B", "C", "E"]


class TestAggregate:
    def test_count_star_grouped(self, micro_store):
        result = run(
            micro_store,
            [
                NodeScan("m", "Message"),
                Expand("m", "c", "HAS_CREATOR", Direction.OUT, to_label="Person"),
                GetProperty("c", "id", "cid"),
                Aggregate(["cid"], [AggSpec("n", "count")]),
                OrderBy([("cid", True)]),
            ],
            returns=["cid", "n"],
        )
        assert result.rows == [(1, 1), (2, 2), (3, 2), (4, 1)]

    def test_global_aggregate_on_empty_input(self, micro_store):
        result = run(
            micro_store,
            [
                NodeByIdSeek("p", "Person", lit(999)),
                Aggregate([], [AggSpec("n", "count")]),
            ],
        )
        assert result.rows == [(0,)]

    def test_sum_min_max_avg(self, micro_store):
        result = run(
            micro_store,
            [
                NodeScan("m", "Message"),
                GetProperty("m", "length", "len"),
                Aggregate(
                    [],
                    [
                        AggSpec("s", "sum", "len"),
                        AggSpec("lo", "min", "len"),
                        AggSpec("hi", "max", "len"),
                        AggSpec("mean", "avg", "len"),
                    ],
                ),
            ],
        )
        s, lo, hi, mean = result.rows[0]
        assert (s, lo, hi) == (803, 90, 200)
        assert abs(mean - 803 / 6) < 1e-9

    def test_count_distinct(self, micro_store):
        result = run(
            micro_store,
            [
                NodeScan("p", "Person"),
                GetProperty("p", "firstName", "n"),
                Aggregate([], [AggSpec("d", "count_distinct", "n")]),
            ],
        )
        assert result.rows == [(4,)]


class TestStats:
    def test_op_times_recorded(self, micro_store):
        result = run(micro_store, [NodeScan("p", "Person")])
        assert "NodeScan" in result.stats.op_times

    def test_peak_bytes_positive(self, micro_store):
        result = run(
            micro_store,
            [NodeScan("p", "Person"), GetProperty("p", "firstName", "n")],
        )
        assert result.stats.peak_intermediate_bytes > 0

    def test_unknown_return_column_rejected(self, micro_store):
        with pytest.raises(ExecutionError):
            run(micro_store, [NodeScan("p", "Person")], returns=["ghost"])
