"""Tests for columnar vertex property storage."""

import numpy as np
import pytest

from repro.errors import SchemaError, StorageError
from repro.storage.properties import PropertyColumn, VertexTable
from repro.storage.catalog import PropertyDef, VertexLabelDef
from repro.types import DataType


def person_def() -> VertexLabelDef:
    return VertexLabelDef(
        "Person",
        [
            PropertyDef("id", DataType.INT64),
            PropertyDef("name", DataType.STRING),
            PropertyDef("score", DataType.FLOAT64),
        ],
        primary_key="id",
    )


class TestPropertyColumn:
    def test_append_and_get(self):
        col = PropertyColumn("x", DataType.INT64)
        assert col.append(5) == 0
        assert col.append(7) == 1
        assert col.get(0) == 5 and col.get(1) == 7

    def test_growth_beyond_initial_capacity(self):
        col = PropertyColumn("x", DataType.INT64, capacity=2)
        for i in range(100):
            col.append(i)
        assert len(col) == 100
        assert col.get(99) == 99

    def test_null_append_clears_validity(self):
        col = PropertyColumn("x", DataType.INT64)
        col.append(None)
        assert col.get(0) is None
        assert not col.is_valid(0)
        assert col.null_count == 1

    def test_string_column(self):
        col = PropertyColumn("x", DataType.STRING)
        col.append("hello")
        col.append(None)
        assert col.get(0) == "hello"
        assert col.get(1) is None

    def test_set(self):
        col = PropertyColumn("x", DataType.INT64)
        col.append(1)
        col.set(0, 9)
        assert col.get(0) == 9

    def test_out_of_range_get(self):
        col = PropertyColumn("x", DataType.INT64)
        with pytest.raises(StorageError):
            col.get(0)

    def test_gather(self):
        col = PropertyColumn.from_array("x", DataType.INT64, np.arange(10))
        out = col.gather(np.asarray([3, 1, 4]))
        assert out.tolist() == [3, 1, 4]

    def test_extend(self):
        col = PropertyColumn("x", DataType.INT64)
        col.extend([1, 2, 3])
        col.extend([4, 5])
        assert col.view().tolist() == [1, 2, 3, 4, 5]

    def test_from_array_view(self):
        col = PropertyColumn.from_array("x", DataType.FLOAT64, [1.5, 2.5])
        assert col.view().tolist() == [1.5, 2.5]


class TestVertexTable:
    def test_insert_returns_dense_rows(self):
        table = VertexTable(person_def())
        assert table.insert({"id": 10, "name": "a"}) == 0
        assert table.insert({"id": 11, "name": "b"}) == 1
        assert len(table) == 2

    def test_primary_key_lookup(self):
        table = VertexTable(person_def())
        table.insert({"id": 42, "name": "x"})
        assert table.row_for_key(42) == 0

    def test_missing_key_raises(self):
        table = VertexTable(person_def())
        with pytest.raises(StorageError):
            table.row_for_key(1)

    def test_try_row_for_key_none(self):
        table = VertexTable(person_def())
        assert table.try_row_for_key(1) is None

    def test_duplicate_key_rejected(self):
        table = VertexTable(person_def())
        table.insert({"id": 1})
        with pytest.raises(StorageError):
            table.insert({"id": 1})

    def test_unknown_property_rejected(self):
        table = VertexTable(person_def())
        with pytest.raises(SchemaError):
            table.insert({"id": 1, "ghost": 2})

    def test_missing_property_becomes_null(self):
        table = VertexTable(person_def())
        table.insert({"id": 1})
        assert table.get_property(0, "name") is None

    def test_bulk_load(self):
        table = VertexTable(person_def())
        table.bulk_load(
            {
                "id": np.asarray([5, 6]),
                "name": np.asarray(["a", "b"], dtype=object),
                "score": np.asarray([0.5, 1.5]),
            }
        )
        assert len(table) == 2
        assert table.row_for_key(6) == 1
        assert table.get_property(0, "score") == 0.5

    def test_bulk_load_ragged_rejected(self):
        table = VertexTable(person_def())
        with pytest.raises(StorageError):
            table.bulk_load({"id": np.asarray([1]), "name": np.asarray([], dtype=object),
                             "score": np.asarray([1.0])})

    def test_bulk_load_missing_column_rejected(self):
        table = VertexTable(person_def())
        with pytest.raises(StorageError):
            table.bulk_load({"id": np.asarray([1])})

    def test_delete_tombstones(self):
        table = VertexTable(person_def())
        table.insert({"id": 1})
        table.insert({"id": 2})
        table.delete(0)
        assert table.num_live == 1
        assert not table.is_live(0)
        assert table.is_live(1)
        assert table.try_row_for_key(1) is None

    def test_all_rows_skips_tombstones(self):
        table = VertexTable(person_def())
        for i in range(4):
            table.insert({"id": i})
        table.delete(2)
        assert table.all_rows().tolist() == [0, 1, 3]
        assert table.all_rows(include_tombstones=True).tolist() == [0, 1, 2, 3]

    def test_set_property(self):
        table = VertexTable(person_def())
        table.insert({"id": 1, "name": "a"})
        table.set_property(0, "name", "z")
        assert table.get_property(0, "name") == "z"

    def test_visibility_without_stamps(self):
        table = VertexTable(person_def())
        table.insert({"id": 1})
        assert table.is_visible(0, version=0)
        assert table.is_visible(0, version=None)

    def test_visibility_with_stamps(self):
        table = VertexTable(person_def())
        table.insert({"id": 1})
        row = table.insert({"id": 2})
        table.mark_created(row, 5)
        assert not table.is_visible(row, version=4)
        assert table.is_visible(row, version=5)
        assert table.is_visible(0, version=0)  # pre-existing rows at version 0

    def test_gather(self):
        table = VertexTable(person_def())
        table.bulk_load(
            {
                "id": np.arange(5),
                "name": np.asarray(list("abcde"), dtype=object),
                "score": np.arange(5, dtype=float),
            }
        )
        assert table.gather("name", np.asarray([4, 0])).tolist() == ["e", "a"]
