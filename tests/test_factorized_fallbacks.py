"""Tests pinning the factorized executor's fallback decision points:
pending-order flushes, streaming AggregateTopK over multi-node groups, and
block-based continuation after de-factoring."""

import numpy as np
import pytest

from repro.exec import ExecStats, execute_factorized, execute_flat
from repro.plan import (
    AggSpec,
    Aggregate,
    AggregateTopK,
    Col,
    Expand,
    Filter,
    GetProperty,
    Limit,
    LogicalPlan,
    NodeByIdSeek,
    NodeScan,
    OrderBy,
    Project,
    lit,
)
from repro.storage.catalog import Direction


def both(store, ops, returns=None, params=None, stats=None):
    plan = LogicalPlan(ops, returns=returns)
    flat = execute_flat(plan, store.read_view(), params)
    fact = execute_factorized(plan, store.read_view(), params, stats)
    assert flat.rows == fact.rows
    return fact


class TestPendingOrderFlush:
    def test_order_then_filter_flushes_sorted(self, micro_store):
        """A non-Limit operator after a node-local OrderBy must apply the
        deferred sort before continuing block-based."""
        stats = ExecStats()
        result = both(
            micro_store,
            [
                NodeScan("m", "Message"),
                GetProperty("m", "length", "len"),
                GetProperty("m", "id", "mid"),
                OrderBy([("len", True)]),
                Filter(Col("len") > lit(100)),
            ],
            returns=["mid", "len"],
            stats=stats,
        )
        lengths = [r[1] for r in result.rows]
        assert lengths == sorted(lengths)
        assert stats.defactor_count == 1

    def test_order_then_end_of_plan_flushes(self, micro_store):
        result = both(
            micro_store,
            [
                NodeScan("m", "Message"),
                GetProperty("m", "length", "len"),
                OrderBy([("len", False)]),
            ],
            returns=["len"],
        )
        assert [r[0] for r in result.rows] == [200, 140, 130, 123, 120, 90]

    def test_order_then_limit_covering_everything(self, micro_store):
        result = both(
            micro_store,
            [
                NodeScan("m", "Message"),
                GetProperty("m", "length", "len"),
                OrderBy([("len", True)]),
                Limit(100),
            ],
            returns=["len"],
        )
        assert len(result.rows) == 6

    def test_ordered_limit_with_upstream_filter(self, micro_store):
        stats = ExecStats()
        result = both(
            micro_store,
            [
                NodeScan("m", "Message"),
                GetProperty("m", "length", "len"),
                Filter(Col("len") >= lit(123)),
                GetProperty("m", "id", "mid"),
                OrderBy([("len", True), ("mid", True)]),
                Limit(2),
            ],
            returns=["mid", "len"],
            stats=stats,
        )
        assert result.rows == [(101, 123), (105, 130)]
        assert stats.defactor_count == 0


class TestStreamingAggregateTopK:
    def test_multi_node_group_keys_stream(self, micro_store):
        """Group keys spanning nodes cannot use index-vector counting; the
        fused operator streams the enumeration instead — still without a
        recorded de-factor."""
        stats = ExecStats()
        result = both(
            micro_store,
            [
                NodeScan("p", "Person"),
                GetProperty("p", "firstName", "name"),
                Expand("p", "m", "HAS_CREATOR", Direction.IN, to_label="Message"),
                GetProperty("m", "length", "len"),
                AggregateTopK(
                    ["name"],
                    [AggSpec("n", "count"), AggSpec("longest", "max", "len")],
                    [("n", False), ("name", True)],
                    3,
                ),
            ],
            returns=["name", "n", "longest"],
            stats=stats,
        )
        assert [(r[0], r[1]) for r in result.rows] == [("B", 3), ("C", 2), ("E", 1)]
        assert result.rows[0][2] == 200  # longest message by a "B"
        assert stats.defactor_count == 0

    def test_streaming_aggregate_min_avg_distinct(self, micro_store):
        result = both(
            micro_store,
            [
                NodeScan("p", "Person"),
                GetProperty("p", "firstName", "name"),
                Expand("p", "m", "HAS_CREATOR", Direction.IN, to_label="Message"),
                GetProperty("m", "length", "len"),
                AggregateTopK(
                    ["name"],
                    [
                        AggSpec("lo", "min", "len"),
                        AggSpec("mean", "avg", "len"),
                        AggSpec("d", "count_distinct", "len"),
                    ],
                    [("name", True)],
                    10,
                ),
            ],
            returns=["name", "lo", "mean", "d"],
        )
        by_name = {r[0]: r for r in result.rows}
        assert by_name["C"][1] == 120  # min(123, 120)
        assert by_name["C"][3] == 2

    def test_global_aggregate_top_k(self, micro_store):
        result = both(
            micro_store,
            [
                NodeScan("m", "Message"),
                GetProperty("m", "length", "len"),
                AggregateTopK([], [AggSpec("total", "sum", "len")], [("total", True)], 1),
            ],
            returns=["total"],
        )
        assert result.rows == [(803,)]


class TestBlockBasedContinuation:
    def test_many_ops_after_defactor(self, micro_store):
        """Once flat, the whole remaining pipeline runs block-based."""
        stats = ExecStats()
        result = both(
            micro_store,
            [
                NodeScan("m", "Message"),
                GetProperty("m", "length", "len"),
                Expand("m", "c", "HAS_CREATOR", Direction.OUT, to_label="Person"),
                GetProperty("c", "age", "age"),
                Filter(Col("len") > Col("age")),  # spans nodes -> de-factor
                Project([("score", Col("len") - Col("age")), ("age", Col("age"))]),
                Filter(Col("score") > lit(90)),
                OrderBy([("score", False)]),
                Limit(3),
            ],
            returns=["score", "age"],
            stats=stats,
        )
        assert stats.defactor_count == 1
        scores = [r[0] for r in result.rows]
        assert scores == sorted(scores, reverse=True)

    def test_vertex_expand_feeding_multi_hop(self, micro_store):
        from repro.plan import VertexExpand

        result = both(
            micro_store,
            [
                VertexExpand(
                    "p", "Person", lit(0),
                    Expand("p", "f", "KNOWS", Direction.OUT, max_hops=2,
                           exclude_start=True),
                ),
                GetProperty("f", "id", "fid"),
                Project([("fid", Col("fid"))]),
                OrderBy([("fid", True)]),
            ],
            returns=["fid"],
        )
        assert [r[0] for r in result.rows] == [1, 2, 3, 4]
