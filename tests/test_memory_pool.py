"""Tests for the copy-on-write memory pool."""

import numpy as np

from repro.storage.memory_pool import MemoryPool, _size_class
from repro.types import DataType


class TestSizeClass:
    def test_minimum(self):
        assert _size_class(1) == 8

    def test_power_of_two(self):
        assert _size_class(8) == 8
        assert _size_class(9) == 16
        assert _size_class(1000) == 1024


class TestMemoryPool:
    def test_acquire_returns_large_enough_buffer(self):
        pool = MemoryPool()
        buf = pool.acquire(10)
        assert len(buf) >= 10
        assert buf.dtype == np.int64

    def test_release_then_reuse_hits(self):
        pool = MemoryPool()
        buf = pool.acquire(10)
        pool.release(buf)
        again = pool.acquire(10)
        assert again is buf
        assert pool.hits == 1
        assert pool.misses == 1

    def test_hit_rate(self):
        pool = MemoryPool()
        buf = pool.acquire(8)
        pool.release(buf)
        pool.acquire(8)
        assert pool.hit_rate == 0.5

    def test_different_dtypes_do_not_mix(self):
        pool = MemoryPool()
        buf = pool.acquire(8, DataType.FLOAT64)
        pool.release(buf)
        other = pool.acquire(8, DataType.INT64)
        assert other is not buf

    def test_non_pool_buffer_ignored_on_release(self):
        pool = MemoryPool()
        pool.release(np.empty(7, dtype=np.int64))  # not a size class
        assert pool.pooled_buffers == 0

    def test_max_per_class_cap(self):
        pool = MemoryPool(max_buffers_per_class=2)
        buffers = [pool.acquire(8) for _ in range(4)]
        for buf in buffers:
            pool.release(buf)
        assert pool.pooled_buffers == 2

    def test_clear(self):
        pool = MemoryPool()
        pool.release(pool.acquire(16))
        pool.clear()
        assert pool.pooled_buffers == 0

    def test_thread_safety_smoke(self):
        import threading

        pool = MemoryPool()

        def worker():
            for _ in range(200):
                pool.release(pool.acquire(32))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert pool.hits + pool.misses == 800
