"""Tests for the GraphStore facade and versioned read views."""

import numpy as np
import pytest

from repro.errors import SchemaError, StorageError
from repro.storage import AdjacencyKey, Direction, VertexRef


KNOWS_OUT = AdjacencyKey("Person", "KNOWS", "Person", Direction.OUT)
CREATOR_IN = AdjacencyKey("Person", "HAS_CREATOR", "Message", Direction.IN)
CREATOR_OUT = AdjacencyKey("Message", "HAS_CREATOR", "Person", Direction.OUT)


class TestStoreBasics:
    def test_vertex_count(self, micro_store):
        assert micro_store.vertex_count == 5 + 6 + 3

    def test_edge_count_counts_out_lists_once(self, micro_store):
        # 8 KNOWS (symmetric pairs stored as directed) + 6 creators + 5 tags
        assert micro_store.edge_count == 8 + 6 + 5

    def test_unknown_label_raises(self, micro_store):
        with pytest.raises(SchemaError):
            micro_store.table("Ghost")

    def test_unknown_adjacency_raises(self, micro_store):
        with pytest.raises(StorageError):
            micro_store.adjacency(AdjacencyKey("Person", "GHOST", "Person", Direction.OUT))

    def test_nbytes_positive(self, micro_store):
        assert micro_store.nbytes > 0

    def test_add_vertex(self, micro_store):
        ref = micro_store.add_vertex("Person", {"id": 99, "firstName": "Z", "age": 1})
        assert ref.label == "Person"
        assert micro_store.table("Person").row_for_key(99) == ref.row

    def test_add_edge_maintains_mirror(self, micro_store):
        m = VertexRef("Message", 0)
        p = VertexRef("Person", 4)
        micro_store.add_edge("HAS_CREATOR", m, p)
        view = micro_store.read_view()
        assert 0 in view.neighbors(CREATOR_IN, 4).tolist()
        assert 4 in view.neighbors(CREATOR_OUT, 0).tolist()

    def test_add_edge_validates_schema(self, micro_store):
        with pytest.raises(SchemaError):
            micro_store.add_edge("KNOWS", VertexRef("Message", 0), VertexRef("Person", 0))

    def test_remove_edge_both_sides(self, micro_store):
        removed = micro_store.remove_edge(
            "HAS_CREATOR", VertexRef("Message", 0), VertexRef("Person", 1)
        )
        assert removed
        view = micro_store.read_view()
        assert 1 not in view.neighbors(CREATOR_OUT, 0).tolist()
        assert 0 not in view.neighbors(CREATOR_IN, 1).tolist()

    def test_remove_missing_edge(self, micro_store):
        assert not micro_store.remove_edge(
            "HAS_CREATOR", VertexRef("Message", 0), VertexRef("Person", 4)
        )


class TestVertexRef:
    def test_equality_and_hash(self):
        assert VertexRef("A", 1) == VertexRef("A", 1)
        assert VertexRef("A", 1) != VertexRef("B", 1)
        assert len({VertexRef("A", 1), VertexRef("A", 1)}) == 1

    def test_repr(self):
        assert "VertexRef" in repr(VertexRef("A", 1))


class TestReadView:
    def test_vertex_by_key(self, micro_store):
        view = micro_store.read_view()
        assert view.vertex_by_key("Person", 3) == 3
        assert view.vertex_by_key("Person", 999) is None

    def test_neighbors(self, micro_store):
        view = micro_store.read_view()
        assert sorted(view.neighbors(KNOWS_OUT, 0).tolist()) == [1, 2]

    def test_degree(self, micro_store):
        view = micro_store.read_view()
        assert view.degree(KNOWS_OUT, 0) == 2

    def test_gather_properties(self, micro_store):
        view = micro_store.read_view()
        names = view.gather_properties("Person", "firstName", np.asarray([1, 3]))
        assert names.tolist() == ["B", "B"]

    def test_vertex_key_roundtrip(self, micro_store):
        view = micro_store.read_view()
        assert view.vertex_key("Message", 2) == 102

    def test_segment_when_clean(self, micro_store):
        view = micro_store.read_view()
        seg = view.segment(KNOWS_OUT, 0)
        assert seg is not None
        assert sorted(seg.materialize().tolist()) == [1, 2]

    def test_segment_none_after_tombstone(self, micro_store):
        micro_store.remove_edge("KNOWS", VertexRef("Person", 0), VertexRef("Person", 1))
        view = micro_store.read_view()
        assert view.segment(KNOWS_OUT, 0) is None

    def test_versioned_view_hides_new_vertices(self, micro_store):
        ref = micro_store.add_vertex("Person", {"id": 77, "firstName": "N", "age": 2})
        micro_store.table("Person").mark_created(ref.row, 3)
        old = micro_store.read_view(version=2)
        new = micro_store.read_view(version=3)
        assert old.vertex_by_key("Person", 77) is None
        assert new.vertex_by_key("Person", 77) == ref.row
        assert ref.row not in old.all_rows("Person").tolist()
        assert ref.row in new.all_rows("Person").tolist()

    def test_frontier_neighbors(self, micro_store):
        view = micro_store.read_view()
        reached = view.frontier_neighbors([KNOWS_OUT], [0])
        assert sorted(reached.tolist()) == [1, 2]
