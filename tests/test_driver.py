"""Tests for the LDBC benchmark driver."""

import numpy as np
import pytest

from repro.engine import EngineConfig, GES
from repro.ldbc import BenchmarkDriver, generate
from repro.ldbc.driver import DriverReport, OperationLog
from repro.ldbc.params import INTERLEAVES


@pytest.fixture(scope="module")
def report():
    dataset = generate("SF1", seed=42)
    engine = GES(dataset.store, EngineConfig.ges_f_star())
    driver = BenchmarkDriver(engine, dataset, seed=7)
    return driver.run(num_operations=120)


class TestSchedule:
    def test_schedule_is_deterministic(self):
        dataset = generate("SF1", seed=42)
        engine = GES(dataset.store)
        driver = BenchmarkDriver(engine, dataset, seed=7)
        first = driver.build_schedule(50)
        second = driver.build_schedule(50)
        assert [op.name for op in first] == [op.name for op in second]

    def test_mix_contains_all_categories(self):
        dataset = generate("SF1", seed=42)
        driver = BenchmarkDriver(GES(dataset.store), dataset, seed=7)
        schedule = driver.build_schedule(300)
        categories = {op.category for op in schedule}
        assert categories == {"IC", "IS", "IU"}

    def test_frequencies_follow_interleaves(self):
        """More-frequent queries (smaller interleave) appear more often."""
        dataset = generate("SF1", seed=42)
        driver = BenchmarkDriver(GES(dataset.store), dataset, seed=1)
        schedule = driver.build_schedule(3000)
        counts = {}
        for op in schedule:
            if op.category == "IC":
                counts[op.name] = counts.get(op.name, 0) + 1
        assert counts.get("IC11", 0) > counts.get("IC9", 0)  # 16 vs 157

    def test_updates_can_be_disabled(self):
        dataset = generate("SF1", seed=42)
        driver = BenchmarkDriver(
            GES(dataset.store), dataset, seed=7, include_updates=False
        )
        schedule = driver.build_schedule(100)
        assert all(op.category != "IU" for op in schedule)


class TestRun:
    def test_all_operations_logged(self, report):
        assert len(report.logs) == 120

    def test_latencies_positive(self, report):
        assert all(log.service_seconds >= 0 for log in report.logs)

    def test_mean_latency(self, report):
        some_is = next(log.name for log in report.logs if log.category == "IS")
        assert report.mean_latency_ms(some_is) > 0

    def test_percentiles_ordered(self, report):
        name = next(log.name for log in report.logs if log.category == "IC")
        assert report.percentile_latency_ms(name, 99) >= report.percentile_latency_ms(name, 50)

    def test_counts_by_category(self, report):
        assert report.count() == 120
        assert report.count("IS") > report.count("IC")

    def test_closed_loop_throughput_positive(self, report):
        assert report.closed_loop_throughput > 0


class TestThroughputScore:
    def test_score_positive(self, report):
        assert report.throughput_score(workers=1) > 0

    def test_more_workers_higher_score(self, report):
        one = report.throughput_score(workers=1)
        four = report.throughput_score(workers=4)
        assert four > one

    def test_trace_windows(self, report):
        rate = report.throughput_score(workers=2)
        trace = report.throughput_trace(rate, workers=2, window_seconds=0.05)
        assert "ALL" in trace
        edges, values = trace["ALL"]
        assert len(edges) == len(values)
        # Total completed ops across all windows equals the stream size.
        assert int(round(values.sum() * 0.05)) == 120


class TestReportMath:
    def test_synthetic_feasibility(self):
        report = DriverReport("X", "SF1")
        report.logs = [OperationLog("Q", "IC", 0.01, 1, 0) for _ in range(100)]
        # 100 ops of 10 ms: one worker sustains ~100 ops/s (the finite run
        # plus the 5% delay allowance lets a small backlog build, so the
        # score can sit slightly above the steady-state bound).
        score = report.throughput_score(workers=1)
        assert 50 <= score <= 135

    def test_two_workers_double_synthetic_score(self):
        report = DriverReport("X", "SF1")
        report.logs = [OperationLog("Q", "IC", 0.01, 1, 0) for _ in range(100)]
        one = report.throughput_score(1)
        two = report.throughput_score(2)
        assert 1.5 <= two / one <= 2.5


class TestDegenerateStreams:
    """DriverReport must be well-defined on empty and singleton runs
    (regression: percentile/throughput math on 0- or 1-element streams)."""

    def test_empty_report(self):
        report = DriverReport("X", "SF1")
        assert report.count() == 0
        assert report.closed_loop_throughput == 0.0
        assert report.throughput_score(workers=1) == 0.0
        assert report.compile_fraction == 0.0
        assert report.plan_cache_hit_rate == 0.0
        assert np.isnan(report.mean_latency_ms("IC1"))
        assert np.isnan(report.percentile_latency_ms("IC1", 99))
        summary = report.latency_summary()
        assert summary["n"] == 0
        for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
            assert np.isnan(summary[key])
        assert report.throughput_trace(rate=10.0, workers=1) == {}

    def test_singleton_report(self):
        report = DriverReport("X", "SF1")
        report.logs = [OperationLog("IC1", "IC", 0.02, 5, 128)]
        assert report.count() == 1
        assert report.count("IC") == 1
        assert report.mean_latency_ms("IC1") == pytest.approx(20.0)
        # One sample: every percentile is that sample, exactly.
        assert report.percentile_latency_ms("IC1", 50) == pytest.approx(20.0)
        assert report.percentile_latency_ms("IC1", 99) == pytest.approx(20.0)
        summary = report.latency_summary("IC1")
        assert summary["n"] == 1
        for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
            assert summary[key] == pytest.approx(20.0)
        assert report.throughput_score(workers=1) > 0.0
        trace = report.throughput_trace(rate=10.0, workers=1, window_seconds=10.0)
        # Sub-window stream: one window covers the whole run.
        edges, values = trace["ALL"]
        assert len(edges) >= 1
        assert values.sum() * 10.0 == pytest.approx(1.0)

    def test_histogram_view_matches_exact_on_singleton(self):
        report = DriverReport("X", "SF1")
        report.logs = [OperationLog("IS2", "IS", 0.004, 1, 0)]
        hist = report.latency_histogram("IS2")
        assert hist.count == 1
        assert hist.percentile(50) == pytest.approx(0.004)
