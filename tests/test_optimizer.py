"""Tests for the operator-fusion rewrite rules (paper §4.3)."""

import pytest

from repro.plan import (
    AggSpec,
    Aggregate,
    AggregateTopK,
    Col,
    Expand,
    Filter,
    GetProperty,
    Limit,
    LogicalPlan,
    NodeByIdSeek,
    NodeScan,
    OrderBy,
    Project,
    TopK,
    VertexExpand,
    lit,
    optimize,
    param,
)
from repro.plan.optimizer import (
    aggregate_project_top,
    filter_push_down,
    top_k,
    vertex_expand,
)
from repro.storage.catalog import Direction


def seek_expand_ops():
    return [
        NodeByIdSeek("p", "Person", param("pid")),
        Expand("p", "m", "HAS_CREATOR", Direction.IN, to_label="Message"),
    ]


class TestFilterPushDown:
    def test_filter_over_fetched_property_fuses(self):
        plan = LogicalPlan(
            seek_expand_ops()
            + [
                GetProperty("m", "length", "len"),
                Filter(Col("len") > lit(100)),
            ]
        )
        out = filter_push_down(plan)
        names = [op.op_name for op in out.ops]
        assert "Filter" not in names
        assert "GetProperty" not in names
        expand = out.ops[1]
        assert expand.neighbor_filter is not None
        assert expand.neighbor_props == {"len": "length"}

    def test_filter_on_to_var_itself_fuses(self):
        plan = LogicalPlan(seek_expand_ops() + [Filter(Col("m") > lit(0))])
        out = filter_push_down(plan)
        assert [op.op_name for op in out.ops] == ["NodeByIdSeek", "Expand"]

    def test_multi_hop_not_fused(self):
        plan = LogicalPlan(
            [
                NodeByIdSeek("p", "Person", param("pid")),
                Expand("p", "f", "KNOWS", Direction.OUT, max_hops=2, exclude_start=True),
                GetProperty("f", "age", "age"),
                Filter(Col("age") > lit(18)),
            ]
        )
        out = filter_push_down(plan)
        assert any(op.op_name == "Filter" for op in out.ops)

    def test_filter_spanning_two_vars_not_fused(self):
        plan = LogicalPlan(
            seek_expand_ops()
            + [
                GetProperty("p", "age", "pAge"),
                GetProperty("m", "length", "len"),
                Filter((Col("len") > Col("pAge"))),
            ]
        )
        out = filter_push_down(plan)
        assert any(op.op_name == "Filter" for op in out.ops)

    def test_two_filters_both_fuse(self):
        plan = LogicalPlan(
            seek_expand_ops()
            + [
                GetProperty("m", "length", "len"),
                Filter(Col("len") > lit(10)),
                Filter(Col("m") > lit(0)),
            ]
        )
        out = filter_push_down(plan)
        assert not any(op.op_name == "Filter" for op in out.ops)


class TestVertexExpand:
    def test_seek_plus_expand_fused(self):
        plan = LogicalPlan(seek_expand_ops())
        out = vertex_expand(plan)
        assert len(out.ops) == 1
        assert isinstance(out.ops[0], VertexExpand)

    def test_non_adjacent_not_fused(self):
        ops = [
            NodeByIdSeek("p", "Person", param("pid")),
            GetProperty("p", "age", "age"),
            Expand("p", "m", "HAS_CREATOR", Direction.IN),
        ]
        out = vertex_expand(LogicalPlan(ops))
        assert len(out.ops) == 3

    def test_expand_from_other_var_not_fused(self):
        ops = [
            NodeByIdSeek("p", "Person", param("pid")),
            Expand("x", "m", "HAS_CREATOR", Direction.IN),
        ]
        # 'x' is not the seek variable, so no fusion even though adjacent.
        out = vertex_expand(LogicalPlan(ops))
        assert len(out.ops) == 2


class TestTopK:
    def test_order_limit_fused(self):
        plan = LogicalPlan(
            [NodeScan("p", "Person"), OrderBy([("p", True)]), Limit(5)]
        )
        out = top_k(plan)
        assert isinstance(out.ops[1], TopK)
        assert out.ops[1].n == 5

    def test_order_without_limit_untouched(self):
        plan = LogicalPlan([NodeScan("p", "Person"), OrderBy([("p", True)])])
        out = top_k(plan)
        assert [op.op_name for op in out.ops] == ["NodeScan", "OrderBy"]


class TestAggregateProjectTop:
    def ops(self, with_project=True):
        ops = [
            NodeScan("p", "Person"),
            GetProperty("p", "age", "age"),
            Aggregate(["age"], [AggSpec("cnt", "count")]),
        ]
        if with_project:
            ops.append(Project([("age", Col("age")), ("cnt", Col("cnt"))]))
        ops += [OrderBy([("cnt", False)]), Limit(3)]
        return ops

    def test_fused_with_project(self):
        out = aggregate_project_top(LogicalPlan(self.ops(True)))
        fused = [op for op in out.ops if isinstance(op, AggregateTopK)]
        assert len(fused) == 1
        assert fused[0].project_items is not None
        assert fused[0].n == 3

    def test_fused_without_project(self):
        out = aggregate_project_top(LogicalPlan(self.ops(False)))
        assert any(isinstance(op, AggregateTopK) for op in out.ops)

    def test_project_with_external_column_blocks_fusion(self):
        ops = [
            NodeScan("p", "Person"),
            GetProperty("p", "age", "age"),
            GetProperty("p", "id", "pid"),
            Aggregate(["age"], [AggSpec("cnt", "count")]),
            Project([("other", Col("pid"))]),
            OrderBy([("other", True)]),
            Limit(3),
        ]
        out = aggregate_project_top(LogicalPlan(ops))
        assert not any(isinstance(op, AggregateTopK) for op in out.ops)


class TestEndToEndSemantics:
    def test_optimized_plan_equals_unoptimized(self, micro_engines):
        """The full rule set must not change results (paper Fig. 8 query)."""
        from repro.plan import LogicalPlan

        ops = [
            NodeByIdSeek("p", "Person", param("pid")),
            Expand("p", "f", "KNOWS", Direction.OUT, max_hops=2, exclude_start=True),
            Expand("f", "m", "HAS_CREATOR", Direction.IN, to_label="Message"),
            GetProperty("m", "length", "len"),
            Filter(Col("len") > lit(110)),
            GetProperty("m", "id", "mid"),
            Project([("mid", Col("mid")), ("len", Col("len"))]),
            OrderBy([("len", False), ("mid", True)]),
            Limit(3),
        ]
        plan = LogicalPlan(ops, returns=["mid", "len"])
        optimized = optimize(plan)
        assert plan_has_fusions(optimized)
        engine = micro_engines["GES_f*"]
        baseline = micro_engines["GES"]
        assert (
            engine.execute(plan, {"pid": 0}).rows
            == baseline.execute(plan, {"pid": 0}).rows
        )


def plan_has_fusions(plan: LogicalPlan) -> bool:
    names = {op.op_name for op in plan.ops}
    return "TopK" in names or "AggregateTopK" in names or "VertexExpand" in names
