"""Tests for the observability subsystem (repro.obs).

Covers the metric primitives (counters, gauges, log-bucketed histograms
and their percentile estimates), the per-query span tracer, the
Prometheus/JSON exporters, the engine's metric wiring, the
ExecStats.merge round-trip guarantee, and the single-clock-source rule.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

import pytest

from repro.engine import EngineConfig, GES
from repro.exec.base import ExecStats
from repro.ldbc import generate
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    SpanTracer,
    get_registry,
    metrics_json,
    prometheus_text,
    render_span_tree,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def dataset():
    return generate("SF1", seed=42)


@pytest.fixture(scope="module")
def person_id(dataset):
    engine = GES(dataset.store, EngineConfig.ges_f_star(metrics=False))
    result = engine.execute("MATCH (p:Person) RETURN p.id AS id LIMIT 1")
    return int(result.rows[0][0])


# ---------------------------------------------------------------------------
# metric primitives
# ---------------------------------------------------------------------------


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_and_read(self):
        g = Gauge()
        g.set(4.25)
        assert g.value == 4.25

    def test_callback_gauge_reads_lazily(self):
        box = {"v": 1.0}
        g = Gauge(fn=lambda: box["v"])
        assert g.value == 1.0
        box["v"] = 9.0
        assert g.value == 9.0


class TestHistogram:
    def test_empty_summary_is_nan(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        for key in ("mean", "min", "max", "p50", "p95", "p99"):
            assert math.isnan(summary[key])

    def test_singleton_percentiles_are_exact(self):
        h = Histogram()
        h.observe(0.037)
        summary = h.summary()
        assert summary["count"] == 1
        for key in ("mean", "min", "max", "p50", "p95", "p99"):
            assert summary[key] == pytest.approx(0.037)

    def test_percentiles_are_ordered_and_clamped(self):
        h = Histogram()
        values = [0.001 * (i + 1) for i in range(200)]
        for v in values:
            h.observe(v)
        p50, p95, p99 = h.percentile(50), h.percentile(95), h.percentile(99)
        assert min(values) <= p50 <= p95 <= p99 <= max(values)
        # Log-bucket estimates stay within a bucket width of the truth.
        assert p50 == pytest.approx(0.1, rel=1.0)

    def test_no_samples_retained(self):
        h = Histogram()
        for _ in range(10_000):
            h.observe(0.5)
        # One bucket, constant space — the whole point of log-bucketing.
        assert len(h._counts) == 1
        assert h.count == 10_000

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Histogram(lowest=0.0)
        with pytest.raises(ValueError):
            Histogram(growth=1.0)


class TestHistogramEdgeCases:
    """The corner inputs a latency histogram actually meets in production:
    zero durations (clock quantization), negative values (clock skew),
    +inf (a deadline sentinel), NaN (a bug upstream), and observations
    landing exactly on bucket boundaries."""

    def test_observe_zero(self):
        h = Histogram()
        h.observe(0.0)
        assert h.count == 1
        assert h.min == 0.0
        # Clamping pins every percentile of a lone zero to exactly zero.
        for pct in (0, 50, 99, 100):
            assert h.percentile(pct) == 0.0

    def test_observe_negative(self):
        h = Histogram()
        h.observe(-0.5)
        # A lone negative reports itself exactly (clamped to min == max).
        assert h.percentile(50) == -0.5
        h.observe(1.0)
        assert h.min == -0.5
        # Bucket 0 cannot locate a negative beyond "at most its bound",
        # but estimates stay ordered and inside the observed range.
        assert -0.5 <= h.percentile(0) <= h.percentile(100) == 1.0

    def test_observe_inf_lands_in_overflow_bucket(self):
        h = Histogram()
        h.observe(0.001)
        h.observe(math.inf)
        assert h.count == 2
        assert h.max == math.inf
        assert math.inf in h._counts
        # The overflow bucket has no finite upper bound to interpolate
        # inside, so its percentiles report the observed max.
        assert h.percentile(99) == math.inf
        # The finite observation reports within its bucket's width.
        assert h.percentile(25) == pytest.approx(0.001, rel=0.05)
        bounds = [bound for bound, _ in h.cumulative_buckets()]
        assert bounds[-1] == math.inf

    def test_observe_nan_is_rejected(self):
        h = Histogram()
        with pytest.raises(ValueError, match="NaN"):
            h.observe(math.nan)
        assert h.count == 0  # the rejected value left no trace

    def test_percentile_on_empty_histogram(self):
        h = Histogram()
        for pct in (0, 50, 95, 100):
            assert math.isnan(h.percentile(pct))

    def test_bucket_boundary_determinism(self):
        # lowest * growth**k is exactly representable for powers of two,
        # but log() can land an epsilon off k; every boundary value must
        # fall in one deterministic bucket (the one it upper-bounds).
        h = Histogram(lowest=1e-6, growth=2.0)
        for k in range(1, 40):
            boundary = h.upper_bound(k)
            assert h._bucket_of(boundary) == k, f"boundary of bucket {k}"
            # An epsilon above the bound belongs to the next bucket.
            assert h._bucket_of(boundary * (1 + 1e-12)) == k + 1

    def test_boundary_observation_counts_once_in_one_bucket(self):
        h = Histogram(lowest=1e-6, growth=2.0)
        boundary = h.upper_bound(10)
        for _ in range(100):
            h.observe(boundary)
        assert h._counts == {10: 100}

    def test_inf_survives_prometheus_export(self):
        reg = MetricsRegistry()
        h = reg.histogram("edge_seconds")
        h.observe(0.001)
        h.observe(math.inf)
        text = prometheus_text(reg)
        # The overflow bucket folds into the single trailing +Inf series —
        # exactly one +Inf line, counting every observation.
        inf_lines = [
            line for line in text.splitlines()
            if line.startswith("edge_seconds_bucket") and "+Inf" in line
        ]
        assert inf_lines == ['edge_seconds_bucket{le="+Inf"} 2']


class TestRegistry:
    def test_same_labels_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", variant="A")
        b = reg.counter("x_total", variant="A")
        c = reg.counter("x_total", variant="B")
        assert a is b
        assert a is not c

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("demo_total", "Demo counter.", variant="GES").inc(3)
        reg.gauge("demo_gauge", "Demo gauge.").set(1.5)
        h = reg.histogram("demo_seconds", "Demo histogram.")
        h.observe(0.002)
        h.observe(0.004)
        text = prometheus_text(reg)
        assert "# HELP demo_total Demo counter." in text
        assert "# TYPE demo_total counter" in text
        assert 'demo_total{variant="GES"} 3.0' in text
        assert "# TYPE demo_seconds histogram" in text
        assert 'demo_seconds_bucket{le="+Inf"} 2' in text
        assert "demo_seconds_count 2" in text
        assert "demo_seconds_sum" in text
        # Cumulative bucket counts never decrease.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("demo_seconds_bucket")
        ]
        assert counts == sorted(counts)

    def test_label_value_escaping(self):
        # Prometheus text exposition: backslash, double quote, and line
        # feed in label values must be escaped (in that order — the
        # backslash pass must not re-escape its own output).
        reg = MetricsRegistry()
        reg.counter("esc_total", query='MATCH (p) WHERE p.name = "x\\y"\nRETURN p').inc()
        text = prometheus_text(reg)
        assert (
            'esc_total{query="MATCH (p) WHERE p.name = \\"x\\\\y\\"\\nRETURN p"} 1.0'
            in text
        )
        # Escaping keeps the exposition one-line-per-sample parseable.
        for line in text.splitlines():
            assert re.fullmatch(r"(# .*|[^\n]*)", line)
            assert "\n" not in line

    def test_plain_label_values_are_untouched(self):
        reg = MetricsRegistry()
        reg.counter("plain_total", variant="GES_f*").inc()
        assert 'plain_total{variant="GES_f*"} 1.0' in prometheus_text(reg)

    def test_json_export_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("demo_total", variant="GES").inc(2)
        h = reg.histogram("demo_seconds")
        h.observe(0.25)
        payload = json.loads(json.dumps(metrics_json(reg)))
        assert payload["demo_total"]["type"] == "counter"
        [series] = payload["demo_total"]["series"]
        assert series["labels"] == {"variant": "GES"}
        assert series["value"] == 2.0
        [hist_series] = payload["demo_seconds"]["series"]
        assert hist_series["count"] == 1
        assert hist_series["p50"] == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# span tracing
# ---------------------------------------------------------------------------


class TestSpanTracer:
    def test_nesting_and_finish(self):
        tracer = SpanTracer()
        tracer.begin("execute")
        tracer.begin("Expand")
        tracer.end(rows_out=5)
        root = tracer.finish()
        assert root.name == "query"
        assert [s.name for _, s in root.walk()] == ["query", "execute", "Expand"]
        expand = root.find("Expand")
        assert expand.attrs["rows_out"] == 5
        assert expand.end is not None

    def test_end_on_root_is_noop(self):
        tracer = SpanTracer()
        assert tracer.end() is None
        assert tracer.current is tracer.root

    def test_add_completed_child(self):
        tracer = SpanTracer()
        tracer.add("compile", 1.0, 1.5, cache="hit")
        root = tracer.finish()
        compile_span = root.find("compile")
        assert compile_span.duration == pytest.approx(0.5)
        assert compile_span.attrs["cache"] == "hit"

    def test_adopt_merges_children(self):
        a, b = SpanTracer(), SpanTracer()
        a.begin("stage1")
        a.finish()
        b.begin("stage2")
        b.finish()
        a.adopt(b)
        assert [c.name for c in a.root.children] == ["stage1", "stage2"]

    def test_to_dict_is_json_ready(self):
        tracer = SpanTracer()
        tracer.begin("execute")
        tracer.end()
        payload = json.loads(json.dumps(tracer.finish().to_dict()))
        assert payload["name"] == "query"
        assert payload["children"][0]["name"] == "execute"

    def test_render_span_tree_shape(self):
        root = Span.completed("query", 0.0, 0.010)
        root.children.append(Span.completed("compile", 0.0, 0.001, cache="miss"))
        root.children.append(Span.completed("execute", 0.001, 0.010, peak_bytes=2048))
        text = render_span_tree(root)
        assert "query" in text and "└─ execute" in text and "├─ compile" in text
        assert "cache=miss" in text
        assert "2.0KB" in text  # *bytes attrs are human-formatted


class TestEngineTracing:
    @pytest.mark.parametrize("variant", ["ges", "ges_f", "ges_f_star"])
    def test_span_tree_per_variant(self, dataset, person_id, variant):
        config = getattr(EngineConfig, variant)(tracing=True)
        engine = GES(dataset.store, config)
        result = engine.execute(
            "MATCH (p:Person)-[:KNOWS]->(f:Person) WHERE p.id = $id "
            "RETURN f.id AS friend ORDER BY friend LIMIT 5",
            {"id": person_id},
        )
        trace = result.stats.trace
        assert trace is not None
        root = trace.finish()
        compile_span = root.find("compile")
        execute_span = root.find("execute")
        assert compile_span is not None and execute_span is not None
        # One span per physical operator, each closed, under "execute".
        assert len(execute_span.children) >= 3
        for op_span in execute_span.children:
            assert op_span.end is not None
            assert op_span.duration >= 0.0
        # The derived flat view agrees on the operator set.
        assert {c.name for c in execute_span.children} <= (
            set(result.stats.op_times)
        )

    def test_tracing_disabled_allocates_nothing(self, dataset):
        engine = GES(dataset.store, EngineConfig.ges_f_star())
        result = engine.execute(
            "MATCH (p:Person) RETURN count(*) AS n"
        )
        assert result.stats.trace is None

    def test_explain_analyze_output(self, dataset, person_id):
        engine = GES(dataset.store, EngineConfig.ges_f_star())
        text = engine.explain_analyze(
            "MATCH (p:Person)-[:KNOWS]->(f:Person) WHERE p.id = $id "
            "RETURN f.id AS friend ORDER BY friend LIMIT 5",
            {"id": person_id},
        )
        assert "EXPLAIN ANALYZE" in text
        assert "compile" in text and "execute" in text
        assert "ms" in text
        # At least one physical operator shows up in the rendering.
        assert re.search(r"(Expand|NodeByIdSeek|Project|TopK|OrderBy)", text)
        # ...without turning tracing on for subsequent queries.
        assert engine.execute(
            "MATCH (p:Person) RETURN count(*) AS n"
        ).stats.trace is None

    def test_multi_stage_stats_merge_single_tree(self, dataset):
        engine = GES(dataset.store, EngineConfig.ges_f_star())
        stats = ExecStats()
        stats.begin_trace()
        engine.execute(
            "MATCH (p:Person) RETURN count(*) AS n", stats=stats
        )
        engine.execute(
            "MATCH (p:Person) RETURN count(*) AS n", stats=stats
        )
        root = stats.trace.finish()
        assert sum(1 for c in root.children if c.name == "execute") == 2


# ---------------------------------------------------------------------------
# engine metric wiring
# ---------------------------------------------------------------------------


class TestEngineMetrics:
    def test_query_metrics_flow_into_registry(self, dataset):
        engine = GES(dataset.store, EngineConfig.ges_f_star())
        registry = get_registry()
        queries = registry.counter("ges_queries_total", variant="GES_f*")
        latency = registry.histogram("ges_query_seconds", variant="GES_f*")
        before_queries = queries.value
        before_latency = latency.count
        for _ in range(3):
            engine.execute("MATCH (p:Person) RETURN count(*) AS n")
        assert queries.value == before_queries + 3
        assert latency.count == before_latency + 3

    def test_plan_cache_metrics(self, dataset):
        engine = GES(dataset.store, EngineConfig.ges_f_star())
        registry = get_registry()
        hits = registry.counter("ges_plan_cache_hits_total", variant="GES_f*")
        misses = registry.counter("ges_plan_cache_misses_total", variant="GES_f*")
        before = hits.value + misses.value
        engine.execute("MATCH (p:Person) RETURN p.id AS i LIMIT 1")
        engine.execute("MATCH (p:Person) RETURN p.id AS i LIMIT 1")
        assert hits.value + misses.value >= before + 2

    def test_metrics_disabled_stays_quiet(self, dataset):
        registry = get_registry()
        queries = registry.counter("ges_queries_total", variant="GES_f*")
        before = queries.value
        engine = GES(dataset.store, EngineConfig.ges_f_star(metrics=False))
        engine.execute("MATCH (p:Person) RETURN count(*) AS n")
        assert queries.value == before

    def test_memory_pool_gauges_registered(self):
        registry = get_registry()
        family = registry.get("ges_memory_pool_buffers")
        assert family is not None and family.kind == "gauge"
        assert registry.get("ges_memory_pool_hit_rate") is not None

    def test_compression_ratio_observed_by_factorized_engine(self, dataset, person_id):
        # GES_f with no fused TopK: the final f-Tree is flattened wholesale
        # at result finalization, which is where compression is accounted.
        registry = get_registry()
        hist = registry.histogram("ges_compression_ratio", variant="GES_f")
        before = hist.count
        engine = GES(dataset.store, EngineConfig.ges_f())
        engine.execute(
            "MATCH (p:Person)-[:KNOWS]->(f:Person)-[:KNOWS]->(g:Person) "
            "WHERE p.id = $id RETURN g.id AS gid",
            {"id": person_id},
        )
        assert hist.count > before


# ---------------------------------------------------------------------------
# ExecStats: the merge round-trip guarantee
# ---------------------------------------------------------------------------


def _populated_stats() -> ExecStats:
    """An ExecStats with *every* public field set to a distinct non-default
    value, discovered by reflection so a future field can't be missed."""
    stats = ExecStats()
    seed = 3
    for name, default in vars(ExecStats()).items():
        seed += 1
        if name == "trace":
            tracer = SpanTracer()
            tracer.begin("execute")
            tracer.end()
            setattr(stats, name, tracer)
        elif isinstance(default, dict):
            setattr(stats, name, {f"k{seed}": float(seed)})
        elif isinstance(default, list):
            setattr(stats, name, [(f"op{seed}", float(seed), seed)])
        elif isinstance(default, str):
            setattr(stats, name, f"s{seed}")
        elif isinstance(default, float):
            setattr(stats, name, float(seed) + 0.5)
        elif isinstance(default, int):
            setattr(stats, name, seed)
        else:  # pragma: no cover - new field of unknown type
            raise AssertionError(
                f"ExecStats.{name}: add a sentinel for type {type(default)}"
            )
    return stats


class TestExecStatsMerge:
    def test_merge_into_fresh_loses_nothing(self):
        """Round-trip: merging a fully-populated ExecStats into a fresh one
        must carry every public field (guards ExecStats.merge against
        silently dropping fields added later)."""
        populated = _populated_stats()
        fresh = ExecStats()
        fresh.merge(populated)
        for name, value in vars(populated).items():
            merged = getattr(fresh, name)
            if name == "trace":
                assert merged is not None
                assert merged.root.find("execute") is not None
            else:
                assert merged == value, (
                    f"ExecStats.merge dropped field {name!r}: "
                    f"{merged!r} != {value!r}"
                )

    def test_merge_accumulates(self):
        a, b = ExecStats(), ExecStats()
        a.record_op("Expand", 0.5, 100)
        b.record_op("Expand", 0.25, 300)
        b.note_defactor()
        b.note_compression(100, 10)
        a.merge(b)
        assert a.op_times["Expand"] == pytest.approx(0.75)
        assert a.peak_intermediate_bytes == 300
        assert a.defactor_count == 1
        assert a.compression_ratio == pytest.approx(10.0)

    def test_merge_adopts_trace_spans(self):
        a, b = ExecStats(), ExecStats()
        b.begin_trace()
        b.trace.begin("execute")
        b.trace.end()
        a.merge(b)
        assert a.trace is not None
        assert a.trace.root.find("execute") is not None


# ---------------------------------------------------------------------------
# single clock source
# ---------------------------------------------------------------------------


FORBIDDEN_CLOCKS = re.compile(
    r"time\.(?:time|monotonic|process_time|perf_counter|perf_counter_ns)\s*\("
)


class TestClockSource:
    def test_no_direct_clock_calls_outside_obs_clock(self):
        """Every timing call site goes through repro.obs.clock.now — direct
        time.* clock calls anywhere else drift benchmarks apart."""
        offenders = []
        for root in ("src", "benchmarks"):
            for path in (REPO_ROOT / root).rglob("*.py"):
                if path.name == "clock.py" and path.parent.name == "obs":
                    continue
                text = path.read_text()
                if FORBIDDEN_CLOCKS.search(text) or re.search(
                    r"^import time$", text, re.MULTILINE
                ):
                    offenders.append(str(path.relative_to(REPO_ROOT)))
        assert not offenders, f"direct clock usage in: {offenders}"

    def test_now_is_perf_counter(self):
        import time

        from repro.obs.clock import now

        assert now is time.perf_counter
