"""Shared-memory lifecycle, leak audits, and worker-crash recovery.

Segments are named ``ges-snap-*`` so ``/dev/shm`` can be audited by
prefix: after unpin/retire, after a ``kill -9`` mid-task, and after pool
shutdown, no orphaned names may remain.  Crash tests carry the
``parallel`` marker (they hold tasks open on purpose).
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.engine.config import EngineConfig
from repro.engine.service import GraphEngineService
from repro.errors import CypherSyntaxError, QueryTimeout, WorkerCrash
from repro.parallel import SEGMENT_PREFIX, WorkerPool, system_segment_names
from repro.parallel.pool import SnapshotTask, raise_worker_reply
from repro.parallel.shm import (
    attach_snapshot,
    created_segment_names,
    detach_snapshot,
    export_view,
)
from repro.testkit.graphgen import generate_store


def _pooled(store, **knobs):
    return GraphEngineService(
        store, EngineConfig.ges(workers=2, scatter_min_rows=1, **knobs)
    )


# ---------------------------------------------------------------------------
# Export / attach round-trip


class TestExportAttach:
    def test_attach_reproduces_store_content(self, micro_store):
        view = micro_store.read_view(None)
        manifest, segment = export_view(view)
        try:
            clone, seg2 = attach_snapshot(manifest)
            try:
                assert clone.vertex_count == micro_store.vertex_count
                for label in micro_store.schema.vertex_labels:
                    ours = micro_store.table(label)
                    theirs = clone.table(label)
                    assert len(theirs) == len(ours)
                    for name in ours.column_names:
                        a = ours.column(name).view()
                        b = theirs.column(name).view()
                        if a.dtype == object:
                            assert list(a) == list(b)
                        else:
                            np.testing.assert_array_equal(a, b)
            finally:
                detach_snapshot(clone, seg2)
        finally:
            from repro.parallel.shm import _unlink_segment

            _unlink_segment(segment)
        assert manifest["segment"] not in system_segment_names()

    def test_numeric_columns_are_zero_copy_views(self, micro_store):
        view = micro_store.read_view(None)
        manifest, segment = export_view(view)
        try:
            clone, seg2 = attach_snapshot(manifest)
            try:
                ages = clone.table("Person").column("age").view()
                assert not ages.flags.writeable
                assert ages.base is not None  # a view, not a copy
            finally:
                detach_snapshot(clone, seg2)
        finally:
            from repro.parallel.shm import _unlink_segment

            _unlink_segment(segment)


# ---------------------------------------------------------------------------
# Engine-tied lifecycle


class TestSegmentLifecycle:
    def test_engine_close_unlinks_segments(self, micro_store):
        engine = _pooled(micro_store)
        engine.execute("MATCH (p:Person) RETURN p.id")
        assert len(engine.parallel.exporter.live_segment_names()) == 1
        engine.close()
        assert engine.parallel.exporter.live_segment_names() == []
        assert not [
            n for n in created_segment_names() if n.startswith(SEGMENT_PREFIX)
        ]

    def test_export_reused_across_queries_on_unchanged_graph(self, micro_store):
        engine = _pooled(micro_store)
        try:
            for _ in range(5):
                engine.execute("MATCH (p:Person) RETURN p.id")
            assert engine.parallel.exporter.exports_total == 1
            assert engine.parallel.exporter.reuses_total == 4
        finally:
            engine.close()

    def test_mutation_retires_stale_export(self, micro_store):
        engine = _pooled(micro_store)
        try:
            engine.execute("MATCH (p:Person) RETURN p.id")
            first = engine.parallel.exporter.live_segment_names()
            txn = engine.transaction()
            txn.add_vertex("Person", {"id": 999, "firstName": "zz", "age": 1})
            txn.commit()
            engine.execute("MATCH (p:Person) RETURN p.id")
            second = engine.parallel.exporter.live_segment_names()
            assert engine.parallel.exporter.exports_total == 2
            assert first != second
            # The stale segment is gone from /dev/shm, not just untracked.
            assert first[0] not in system_segment_names()
        finally:
            engine.close()

    def test_new_vertex_visible_after_reexport(self, micro_store):
        engine = _pooled(micro_store)
        try:
            before = len(engine.execute("MATCH (p:Person) RETURN p.id").rows)
            txn = engine.transaction()
            txn.add_vertex("Person", {"id": 1000, "firstName": "new", "age": 30})
            txn.commit()
            after = engine.execute("MATCH (p:Person) RETURN p.id")
            assert len(after.rows) == before + 1
            assert (1000,) in after.rows
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# Crash recovery and error propagation (slow: holds tasks open)


@pytest.mark.parallel
class TestCrashRecovery:
    def test_kill9_mid_task_raises_workercrash_and_pool_recovers(self):
        pool = WorkerPool(1)
        try:
            (pid,) = pool.worker_pids()
            failures: list[BaseException] = []

            def run_blocked():
                try:
                    pool.run(
                        SnapshotTask({"op": "block", "seconds": 30.0}),
                        timeout_s=30.0,
                    )
                except BaseException as exc:  # noqa: BLE001
                    failures.append(exc)

            thread = threading.Thread(target=run_blocked)
            thread.start()
            deadline = time.monotonic() + 5.0
            while pool.tasks_total == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.1)  # let the send land in the worker
            os.kill(pid, signal.SIGKILL)
            thread.join(timeout=15.0)
            assert not thread.is_alive()
            assert len(failures) == 1
            assert isinstance(failures[0], WorkerCrash)
            assert pool.respawns == 1
            # The replacement worker answers — the pool healed itself.
            assert pool.ping(timeout_s=15.0) == 1
            assert pool.worker_pids() != [pid]
        finally:
            pool.shutdown()

    def test_killing_idle_worker_costs_a_respawn_not_the_batch(self):
        pool = WorkerPool(2)
        try:
            for pid in pool.worker_pids():
                os.kill(pid, signal.SIGKILL)
            time.sleep(0.2)
            assert pool.ping(timeout_s=15.0) == 2
            assert pool.respawns >= 2
        finally:
            pool.shutdown()

    def test_no_orphaned_segments_after_worker_crash(self):
        store, _ = generate_store(3)
        engine = _pooled(store)
        try:
            label = next(iter(store.schema.vertex_labels))
            engine.execute(f"MATCH (v:{label}) RETURN 1")
            for pid in engine.parallel.pool.worker_pids():
                os.kill(pid, signal.SIGKILL)
            time.sleep(0.2)
            # Dead workers' mappings are gone; the engine still answers.
            result = engine.execute(f"MATCH (v:{label}) RETURN 1")
            assert result.rows
        finally:
            engine.close()
        assert not [
            n for n in created_segment_names() if n.startswith(SEGMENT_PREFIX)
        ]

    def test_pipe_timeout_raises_querytimeout_and_recycles(self):
        pool = WorkerPool(1)
        try:
            with pytest.raises(QueryTimeout):
                pool.run(
                    SnapshotTask({"op": "block", "seconds": 30.0}),
                    timeout_s=0.2,
                )
            assert pool.respawns == 1
            assert pool.ping(timeout_s=15.0) == 1
        finally:
            pool.shutdown()

    def test_worker_errors_come_back_typed(self, micro_store):
        view = micro_store.read_view(None)
        manifest, segment = export_view(view)
        pool = WorkerPool(1)
        try:
            reply = pool.run(
                SnapshotTask(
                    {
                        "op": "exec",
                        "mode": "whole",
                        "cypher": "THIS IS NOT CYPHER ???",
                        "snapshot_id": manifest["snapshot_id"],
                        "version": None,
                    },
                    snapshot_id=manifest["snapshot_id"],
                    manifest=manifest,
                ),
                timeout_s=30.0,
            )
            assert reply["ok"] is False
            assert reply["etype"] == "CypherSyntaxError"
            with pytest.raises(CypherSyntaxError):
                raise_worker_reply(reply)
        finally:
            pool.shutdown()
            from repro.parallel.shm import _unlink_segment

            _unlink_segment(segment)


# ---------------------------------------------------------------------------
# Whole-suite safety net


def test_no_leaked_segments_in_dev_shm():
    """Nothing this process created may still be registered (atexit would
    reclaim them, but nothing in the suite should rely on that)."""
    assert not [
        n for n in created_segment_names() if n.startswith(SEGMENT_PREFIX)
    ]
