"""Tests for graph snapshots (save/load) and the CLI."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.errors import StorageError
from repro.exec import execute_factorized
from repro.ldbc import generate
from repro.plan import LogicalPlan, NodeScan
from repro.storage import load_graph, save_graph
from repro.storage.catalog import AdjacencyKey, Direction


class TestSnapshots:
    def test_round_trip_counts(self, micro_store, tmp_path):
        save_graph(micro_store, tmp_path / "snap")
        loaded = load_graph(tmp_path / "snap")
        assert loaded.vertex_count == micro_store.vertex_count
        assert loaded.edge_count == micro_store.edge_count

    def test_round_trip_properties(self, micro_store, tmp_path):
        loaded = load_graph(save_graph(micro_store, tmp_path / "snap"))
        table = loaded.table("Person")
        assert table.get_property(1, "firstName") == "B"
        assert table.row_for_key(3) == 3

    def test_round_trip_adjacency_and_edge_props(self, micro_store, tmp_path):
        loaded = load_graph(save_graph(micro_store, tmp_path / "snap"))
        key = AdjacencyKey("Person", "KNOWS", "Person", Direction.OUT)
        view = loaded.read_view()
        assert sorted(view.neighbors(key, 0).tolist()) == [1, 2]
        adjacency = loaded.adjacency(key)
        slots = view.neighbor_slots(key, 0)
        assert sorted(adjacency.gather_prop("since", slots).tolist()) == [10, 20]

    def test_round_trip_excludes_tombstones(self, micro_store, tmp_path):
        from repro.storage.graph import VertexRef

        micro_store.remove_edge("KNOWS", VertexRef("Person", 0), VertexRef("Person", 1))
        loaded = load_graph(save_graph(micro_store, tmp_path / "snap"))
        key = AdjacencyKey("Person", "KNOWS", "Person", Direction.OUT)
        assert loaded.read_view().neighbors(key, 0).tolist() == [2]
        # The reloaded store is compact again: pointer joins re-enabled.
        assert loaded.adjacency(key).supports_segments

    def test_round_trip_sf1_query_equivalence(self, sf1_dataset, tmp_path):
        save_graph(sf1_dataset.store, tmp_path / "sf1")
        loaded = load_graph(tmp_path / "sf1")
        plan = LogicalPlan([NodeScan("p", "Person")])
        original = execute_factorized(plan, sf1_dataset.store.read_view()).rows
        reloaded = execute_factorized(plan, loaded.read_view()).rows
        assert original == reloaded

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_graph(tmp_path / "nope")

    def test_export_edges_shape(self, micro_store):
        key = AdjacencyKey("Message", "HAS_CREATOR", "Person", Direction.OUT)
        src, dst, props, validity = micro_store.adjacency(key).export_edges()
        assert len(src) == len(dst) == 6
        assert props == {}
        assert validity == {}


class TestCli:
    def test_generate(self, capsys, tmp_path):
        assert cli_main(["generate", "--scale", "SF1", "--out", str(tmp_path / "g")]) == 0
        out = capsys.readouterr().out
        assert "persons" in out and "snapshot written" in out

    def test_query_on_scale(self, capsys):
        code = cli_main(
            ["query", "--scale", "SF1",
             "MATCH (p:Person) RETURN count(*) AS n"]
        )
        assert code == 0
        assert "150" in capsys.readouterr().out

    def test_query_with_params(self, capsys):
        code = cli_main(
            ["query", "--scale", "SF1", "--param", "pid=1000",
             "MATCH (p:Person) WHERE id(p) = $pid RETURN p.firstName AS name"]
        )
        assert code == 0
        assert "name" in capsys.readouterr().out

    def test_query_on_snapshot(self, capsys, tmp_path):
        cli_main(["generate", "--scale", "SF1", "--out", str(tmp_path / "g")])
        capsys.readouterr()
        code = cli_main(
            ["query", "--graph", str(tmp_path / "g"),
             "MATCH (m:Message) RETURN count(*) AS n"]
        )
        assert code == 0

    def test_bench(self, capsys):
        assert cli_main(["bench", "--scale", "SF1", "--ops", "60"]) == 0
        out = capsys.readouterr().out
        assert "TCR score" in out and "IC:" in out

    def test_unknown_variant_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["bench", "--scale", "SF1", "--variant", "Neo4j"])

    def test_volcano_rejects_cypher(self):
        with pytest.raises(SystemExit):
            cli_main(["query", "--scale", "SF1", "--variant", "Volcano",
                      "MATCH (p:Person) RETURN count(*) AS n"])

    def test_profile_text(self, capsys):
        assert cli_main(["profile", "IC5", "--scale", "SF1"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out

    def test_profile_json_is_the_flight_recorder_serialization(self, capsys):
        import json

        from repro.obs.export import SPAN_TREE_SCHEMA_VERSION

        assert cli_main(
            ["profile", "IC5", "--scale", "SF1", "--format", "json",
             "--variant", "all"]
        ) == 0
        profiles = json.loads(capsys.readouterr().out)
        assert len(profiles) == 3  # one per paper variant
        for profile in profiles:
            assert profile["schema_version"] == SPAN_TREE_SCHEMA_VERSION
            assert profile["query"] == "IC5"
            root = profile["root"]
            assert root["name"] == "query"
            assert root["seconds"] > 0
            assert root["children"], "span tree must have operator spans"

    def test_profile_json_raw_cypher(self, capsys):
        import json

        assert cli_main(
            ["profile", "MATCH (p:Person) RETURN count(*) AS n",
             "--scale", "SF1", "--format", "json"]
        ) == 0
        [profile] = json.loads(capsys.readouterr().out)
        assert profile["root"]["attrs"]["rows"] == 1
