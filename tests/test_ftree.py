"""Tests for the f-Tree, including the paper's worked Example 4.2."""

import numpy as np
import pytest

from repro.core import Column, FBlock, FTree, IndexVector, materialize
from repro.errors import FactorizationError
from repro.types import DataType


def example_4_2() -> FTree:
    """The exact f-Tree of paper Figure 7 / Example 4.2."""
    root_block = FBlock(
        [Column("pId", DataType.STRING, np.asarray(["p1", "p2"], dtype=object))]
    )
    tree = FTree.single("r", root_block)
    u_block = FBlock(
        [
            Column("comId", DataType.STRING, np.asarray(["c1", "c2", "c3", "c4"], dtype=object)),
            Column("comLen", DataType.INT64, np.asarray([6, 9, 5, 7])),
        ]
    )
    u = tree.add_child(
        tree.root, "u", u_block, IndexVector(np.asarray([0, 2]), np.asarray([2, 4]))
    )
    u.and_selection(np.asarray([True, False, True, False]))
    v_block = FBlock(
        [
            Column("postId", DataType.STRING, np.asarray(["m1", "m2", "m3"], dtype=object)),
            Column("postLen", DataType.INT64, np.asarray([140, 123, 120])),
        ]
    )
    tree.add_child(
        tree.root, "v", v_block, IndexVector(np.asarray([0, 1]), np.asarray([1, 3]))
    )
    return tree


class TestIndexVector:
    def test_from_lengths(self):
        iv = IndexVector.from_lengths(np.asarray([2, 0, 3]))
        assert iv.starts.tolist() == [0, 2, 2]
        assert iv.ends.tolist() == [2, 2, 5]

    def test_identity(self):
        iv = IndexVector.identity(3)
        assert iv.range_of(1) == (1, 2)

    def test_negative_range_rejected(self):
        with pytest.raises(FactorizationError):
            IndexVector(np.asarray([2]), np.asarray([1]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(FactorizationError):
            IndexVector(np.asarray([0, 1]), np.asarray([1]))

    def test_lengths(self):
        iv = IndexVector(np.asarray([0, 3]), np.asarray([2, 7]))
        assert iv.lengths().tolist() == [2, 4]


class TestExample42:
    """Every number in this class comes straight from the paper."""

    def test_num_tuples_is_three(self):
        assert example_4_2().num_tuples() == 3

    def test_enumeration_matches_paper(self):
        rows = list(example_4_2().iter_tuples())
        assert rows == [
            ("p1", "c1", 6, "m1", 140),
            ("p2", "c3", 5, "m2", 123),
            ("p2", "c3", 5, "m3", 120),
        ]

    def test_materialize_matches_enumeration(self):
        tree = example_4_2()
        flat = materialize(tree)
        assert flat.to_pylist() == list(tree.iter_tuples())

    def test_disjoint_schema_partition(self):
        tree = example_4_2()
        assert tree.schema == ["pId", "comId", "comLen", "postId", "postLen"]

    def test_valid_counts_per_root_entry(self):
        # |R_r^1| = 1, |R_r^2| = 2 (Example 4.2).
        assert example_4_2().valid_counts().tolist() == [1, 2]

    def test_attribute_projection(self):
        rows = list(example_4_2().iter_tuples(["postLen", "pId"]))
        assert rows == [(140, "p1"), (123, "p2"), (120, "p2")]


class TestFTreeStructure:
    def test_duplicate_attribute_rejected(self):
        tree = FTree.single("r", FBlock.from_arrays(a=[1]))
        with pytest.raises(FactorizationError):
            tree.add_child(
                tree.root, "c", FBlock.from_arrays(a=[2]), IndexVector.from_lengths([1])
            )

    def test_index_vector_arity_must_match_parent(self):
        tree = FTree.single("r", FBlock.from_arrays(a=[1, 2]))
        with pytest.raises(FactorizationError):
            tree.add_child(
                tree.root, "c", FBlock.from_arrays(b=[1]), IndexVector.from_lengths([1])
            )

    def test_range_exceeding_child_rejected(self):
        tree = FTree.single("r", FBlock.from_arrays(a=[1]))
        with pytest.raises(FactorizationError):
            tree.add_child(
                tree.root,
                "c",
                FBlock.from_arrays(b=[1]),
                IndexVector(np.asarray([0]), np.asarray([5])),
            )

    def test_node_of(self):
        tree = example_4_2()
        assert tree.node_of("comLen").name == "u"
        assert tree.node_of("pId").name == "r"

    def test_node_of_unknown_raises(self):
        with pytest.raises(FactorizationError):
            example_4_2().node_of("ghost")

    def test_add_column_updates_attribute_map(self):
        tree = example_4_2()
        node = tree.node_of("postId")
        tree.add_column(node, Column("extra", DataType.INT64, [1, 2, 3]))
        assert tree.node_of("extra") is node

    def test_add_column_disjointness(self):
        tree = example_4_2()
        with pytest.raises(FactorizationError):
            tree.add_column(tree.root, Column("comLen", DataType.INT64, [0, 0]))

    def test_selection_length_checked(self):
        tree = example_4_2()
        with pytest.raises(FactorizationError):
            tree.root.and_selection(np.asarray([True]))

    def test_nodes_preorder(self):
        names = [n.name for n in example_4_2().nodes()]
        assert names == ["r", "u", "v"]

    def test_node_named(self):
        assert example_4_2().node_named("v").block.schema == ["postId", "postLen"]

    def test_nbytes_smaller_than_flat_for_shared_prefix(self):
        # A 1 x 1000 expansion: factorized stores the parent value once.
        tree = FTree.single("r", FBlock.from_arrays(p=[42]))
        child = FBlock([Column("n", DataType.INT64, np.arange(1000))])
        tree.add_child(tree.root, "c", child, IndexVector.from_lengths([1000]))
        flat = materialize(tree)
        assert tree.nbytes < flat.nbytes

    def test_root_selection_filters_everything(self):
        tree = example_4_2()
        tree.root.and_selection(np.asarray([False, True]))
        assert tree.num_tuples() == 2
        assert list(tree.iter_tuples(["pId"])) == [("p2",), ("p2",)]

    def test_empty_child_range_kills_parent_entry(self):
        tree = FTree.single("r", FBlock.from_arrays(p=[1, 2]))
        child = FBlock.from_arrays(c=[10])
        tree.add_child(
            tree.root, "c", child, IndexVector(np.asarray([0, 1]), np.asarray([1, 1]))
        )
        assert tree.num_tuples() == 1
        assert list(tree.iter_tuples()) == [(1, 10)]
