"""Validity bitmaps, zone maps, dictionary encoding, selection vectors, and
the zone-map-assisted FilteredNodeScan — the sentinel-bug-class regression
suite.

The storage contract under test: NULL is a cleared validity bit, never a
magic value.  Int64-min (the old ``NULL_INT`` sentinel, retained only as
the inert fill under invalid slots) must round-trip as legitimate data,
and a guard test keeps new sentinel references from creeping back into
``src/``.
"""

import random
from pathlib import Path

import numpy as np
import pytest

from repro.core.flatblock import FlatBlock
from repro.exec.flat import execute_flat
from repro.exec.factorized import execute_factorized
from repro.baselines.volcano import VolcanoEngine
from repro.plan.expressions import Cmp, Col, Lit, Param
from repro.plan.logical import (
    Filter,
    FilteredNodeScan,
    GetProperty,
    LogicalPlan,
    NodeScan,
    plan_summary,
)
from repro.plan.optimizer import optimize, zone_map_scan
from repro.storage.catalog import GraphSchema, PropertyDef, VertexLabelDef
from repro.storage.graph import GraphStore
from repro.storage.properties import PropertyColumn
from repro.storage.validity import ZONE_BLOCK_ROWS, pack_values
from repro.types import NULL_INT, DataType

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


# -- bitmap round-trips --------------------------------------------------------


def roundtrip(dtype, values):
    column = PropertyColumn.from_array("c", dtype, values)
    return [column.get(i) for i in range(len(values))]


class TestBitmapRoundTrip:
    def test_int_with_none_holes(self):
        values = [1, None, 3, None, 5]
        assert roundtrip(DataType.INT64, values) == values

    def test_int64_min_is_data(self):
        # The heart of the bug class: the old sentinel value round-trips.
        values = [NULL_INT, None, 0]
        out = roundtrip(DataType.INT64, values)
        assert out == [NULL_INT, None, 0]
        column = PropertyColumn.from_array("c", DataType.INT64, values)
        assert column.is_valid(0) and not column.is_valid(1)

    def test_float_nan_and_none_become_null(self):
        column = PropertyColumn.from_array(
            "c", DataType.FLOAT64, [1.5, float("nan"), None]
        )
        assert column.get(0) == 1.5
        assert column.get(1) is None and column.get(2) is None
        assert column.null_count == 2

    def test_empty_column(self):
        column = PropertyColumn.from_array("c", DataType.INT64, [])
        assert len(column) == 0
        assert column.validity_mask() is None
        assert column.gather_validity(np.empty(0, dtype=np.int64)) is None

    def test_all_null_column(self):
        values = [None] * (ZONE_BLOCK_ROWS + 3)
        column = PropertyColumn.from_array("c", DataType.INT64, values)
        assert column.null_count == len(values)
        assert column.gather_validity(np.arange(4)).tolist() == [False] * 4

    def test_bool_and_string(self):
        assert roundtrip(DataType.BOOL, [True, None, False]) == [True, None, False]
        assert roundtrip(DataType.STRING, ["a", None, ""]) == ["a", None, ""]

    def test_seeded_random_roundtrip_all_dtypes(self):
        rng = random.Random(42)
        pools = {
            DataType.INT64: lambda: rng.choice([NULL_INT, -1, 0, 7, 2**62]),
            DataType.FLOAT64: lambda: rng.choice([-2.5, 0.0, 3.25]),
            DataType.BOOL: lambda: rng.random() < 0.5,
            DataType.STRING: lambda: rng.choice(["", "x", "yy", "zzz"]),
        }
        for dtype, draw in pools.items():
            values = [None if rng.random() < 0.25 else draw() for _ in range(500)]
            assert roundtrip(dtype, values) == values

    def test_pack_values_detects_holes_and_nan(self):
        data, validity = pack_values([1, None, 3], DataType.INT64)
        assert validity.tolist() == [True, False, True]
        assert data[1] == DataType.INT64.fill_value()
        _, fvalid = pack_values([1.0, float("nan")], DataType.FLOAT64)
        assert fvalid.tolist() == [True, False]

    def test_pack_values_all_valid_collapses_to_none(self):
        _, validity = pack_values([1, 2, 3], DataType.INT64)
        assert validity is None


# -- zone maps -----------------------------------------------------------------


def _int_column(values):
    return PropertyColumn.from_array("v", DataType.INT64, values)


class TestZoneMaps:
    def test_candidate_blocks_skip_out_of_range(self):
        # Block b holds values in [b*10, b*10+9].
        n = ZONE_BLOCK_ROWS * 4
        values = [(i // ZONE_BLOCK_ROWS) * 10 + i % 10 for i in range(n)]
        zmap = _int_column(values).zone_map()
        assert zmap.candidate_blocks(">", 25.0).tolist() == [False, False, True, True]
        assert zmap.candidate_blocks("==", 12.0).tolist() == [False, True, False, False]
        assert zmap.candidate_blocks("<", 5.0).tolist() == [True, False, False, False]

    def test_all_null_block_is_skippable(self):
        values = [None] * ZONE_BLOCK_ROWS + [7] * ZONE_BLOCK_ROWS
        zmap = _int_column(values).zone_map()
        assert zmap.candidate_blocks("==", 7.0).tolist() == [False, True]
        assert zmap.block_null_count(0) == ZONE_BLOCK_ROWS

    def test_update_never_goes_stale(self):
        column = _int_column([5] * ZONE_BLOCK_ROWS)
        assert column.zone_map().candidate_blocks(">", 100.0).tolist() == [False]
        column.set(3, 999)  # marks the block dirty; next consult rebuilds
        assert column.zone_map().candidate_blocks(">", 100.0).tolist() == [True]

    def test_update_to_null_shrinks_range(self):
        column = _int_column([5] * (ZONE_BLOCK_ROWS - 1) + [999])
        assert column.zone_map().candidate_blocks(">", 100.0).tolist() == [True]
        column.set(ZONE_BLOCK_ROWS - 1, None)
        assert column.zone_map().candidate_blocks(">", 100.0).tolist() == [False]

    def test_append_extends_summaries(self):
        column = _int_column([5] * ZONE_BLOCK_ROWS)
        for _ in range(3):
            column.append(500)
        zmap = column.zone_map()
        assert zmap.num_blocks == 2
        assert zmap.candidate_blocks(">", 100.0).tolist() == [False, True]

    def test_non_numeric_columns_have_no_zone_map(self):
        column = PropertyColumn.from_array("s", DataType.STRING, ["a", "b"])
        assert not column.supports_zone_map
        assert column.zone_map() is None


# -- dictionary encoding -------------------------------------------------------


class TestDictionaryEncoding:
    def test_low_cardinality_bulk_load_encodes(self):
        values = [["red", "green", None][i % 3] for i in range(2000)]
        column = PropertyColumn.from_array("c", DataType.STRING, values)
        assert column.is_dict_encoded
        assert [column.get(i) for i in range(12)] == values[:12]
        assert column.gather(np.asarray([0, 1, 3])).tolist() == ["red", "green", "red"]
        assert column.gather_validity(np.asarray([0, 1])).tolist() == [True, True]
        assert column.gather_validity(np.asarray([2, 5])).tolist() == [False, False]

    def test_encoded_column_survives_appends_and_updates(self):
        values = ["a", "b"] * 600
        column = PropertyColumn.from_array("c", DataType.STRING, values)
        assert column.is_dict_encoded
        column.append("c")
        column.append(None)
        column.set(0, "b")
        assert column.is_dict_encoded
        assert column.get(0) == "b"
        assert column.get(len(values)) == "c"
        assert column.get(len(values) + 1) is None

    def test_dict_code_lookup(self):
        column = PropertyColumn.from_array("c", DataType.STRING, ["a", "b"] * 600)
        assert column.dict_code("a") is not None
        assert column.dict_code("nope") is None

    def test_dictionary_saves_memory(self):
        values = [["alpha", "beta", "gamma"][i % 3] for i in range(3000)]
        encoded = PropertyColumn.from_array("c", DataType.STRING, values)
        plain = PropertyColumn("c", DataType.STRING, capacity=len(values))
        plain.extend(values)
        assert encoded.is_dict_encoded and not plain.is_dict_encoded
        assert encoded.nbytes < plain.nbytes


# -- selection vectors ---------------------------------------------------------


class TestSelectionVectors:
    def _block(self):
        block = FlatBlock()
        block.add_array("a", DataType.INT64, np.arange(8, dtype=np.int64))
        block.add_array(
            "b",
            DataType.INT64,
            np.asarray([10, 20, 30, 40, 50, 60, 70, 80], dtype=np.int64),
            np.asarray([True, False] * 4),
        )
        return block

    def test_filter_is_a_view_not_a_copy(self):
        block = self._block()
        filtered = block.filter(np.asarray([True, False] * 4))
        assert filtered.is_selected and not block.is_selected
        assert filtered.array("a").tolist() == [0, 2, 4, 6]

    def test_validity_rides_the_selection(self):
        block = self._block()
        filtered = block.filter(np.asarray([False, True] * 4))
        assert filtered.array("b").tolist() == [20, 40, 60, 80]
        assert filtered.validity("b").tolist() == [False] * 4

    def test_chained_selections_compose(self):
        block = self._block().filter(np.asarray([True] * 6 + [False] * 2))
        again = block.filter(np.asarray([False, True] * 3))
        assert again.array("a").tolist() == [1, 3, 5]

    def test_parent_mutation_isolated_after_take(self):
        block = self._block()
        taken = block.take(np.asarray([0, 1]))
        block.add_array("c", DataType.INT64, np.arange(8, dtype=np.int64))
        assert "c" not in taken.schema


# -- FilteredNodeScan + zone-map pruning end to end ---------------------------


def _scan_store(n=4 * ZONE_BLOCK_ROWS):
    schema = GraphSchema()
    schema.add_vertex_label(
        VertexLabelDef(
            "N",
            [PropertyDef("id", DataType.INT64), PropertyDef("v", DataType.INT64)],
            primary_key="id",
        )
    )
    store = GraphStore(schema)
    rng = random.Random(7)
    values = [
        None if rng.random() < 0.1 else (i // ZONE_BLOCK_ROWS) * 1000 + rng.randint(0, 9)
        for i in range(n)
    ]
    store.bulk_load_vertices("N", {"id": list(range(n)), "v": values})
    return store


def _filter_plan(cmp_expr):
    return LogicalPlan(
        [NodeScan("a", "N"), GetProperty("a", "v", "v"), Filter(cmp_expr)],
        returns=["a", "v"],
    )


class TestZoneMapScanRewrite:
    def test_fuses_scan_getter_filter(self):
        opt = zone_map_scan(_filter_plan(Col("v") > Lit(10)))
        assert plan_summary(opt) == "FilteredNodeScan"
        fused = opt.ops[0]
        assert (fused.var, fused.label, fused.prop, fused.out) == ("a", "N", "v", "v")
        assert fused.cmp == ">"

    def test_flips_reversed_operands(self):
        opt = zone_map_scan(_filter_plan(Cmp("<=", Lit(10), Col("v"))))
        assert isinstance(opt.ops[0], FilteredNodeScan)
        assert opt.ops[0].cmp == ">="

    def test_param_value_qualifies(self):
        opt = zone_map_scan(_filter_plan(Cmp("==", Col("v"), Param("t"))))
        assert isinstance(opt.ops[0], FilteredNodeScan)

    def test_col_vs_col_not_fused(self):
        opt = zone_map_scan(_filter_plan(Cmp("<", Col("v"), Col("v"))))
        assert plan_summary(opt) == "NodeScan -> GetProperty -> Filter"

    def test_not_equal_not_fused(self):
        opt = zone_map_scan(_filter_plan(Cmp("!=", Col("v"), Lit(10))))
        assert plan_summary(opt) == "NodeScan -> GetProperty -> Filter"

    def test_unsupported_cmp_rejected_at_construction(self):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            FilteredNodeScan("a", "N", "v", "v", "!=", Lit(1))


class TestFilteredScanExecution:
    @pytest.mark.parametrize("cmp", ["<", "<=", ">", ">=", "=="])
    def test_variants_agree_and_blocks_skip(self, cmp):
        store = _scan_store()
        plan = _filter_plan(Cmp(cmp, Col("v"), Lit(2003)))
        opt = optimize(plan)
        assert isinstance(opt.ops[0], FilteredNodeScan)
        engine = VolcanoEngine(store)
        view = engine.read_view()
        zmap = store.table("N").column("v").zone_map()
        skipped_before = zmap.blocks_skipped
        flat = execute_flat(opt, view)
        fact = execute_factorized(opt, view)
        rows = engine.execute(plan).rows
        assert sorted(flat.rows) == sorted(fact.rows) == sorted(rows)
        assert zmap.blocks_skipped > skipped_before

    def test_nulls_never_match(self):
        store = _scan_store()
        view = VolcanoEngine(store).read_view()
        result = execute_flat(optimize(_filter_plan(Col("v") >= Lit(0))), view)
        column = store.table("N").column("v")
        null_rows = {
            int(r) for r in range(len(column)) if not column.is_valid(int(r))
        }
        assert null_rows  # the generator produced some
        assert not null_rows & {row for row, _ in result.rows}

    def test_versioned_view_falls_back_densely(self):
        store = _scan_store()
        engine = VolcanoEngine(store)
        txn = engine.transaction()
        txn.set_vertex_property("N", 5, "v", 777_777)
        txn.commit()
        view = engine.read_view()
        assert view.version is not None
        plan = _filter_plan(Col("v") > Lit(500_000))
        opt = optimize(plan)
        zmap = store.table("N").column("v").zone_map()
        consultations = zmap.consultations
        flat = execute_flat(opt, view)
        assert (5, 777_777) in flat.rows
        assert sorted(flat.rows) == sorted(engine.execute(plan, view=view).rows)
        assert zmap.consultations == consultations  # zone map not trusted

    def test_update_visible_through_zone_map_path(self):
        store = _scan_store()
        store.table("N").set_property(9, "v", 777_777)
        view = VolcanoEngine(store).read_view()
        flat = execute_flat(optimize(_filter_plan(Col("v") > Lit(500_000))), view)
        assert flat.rows == [(9, 777_777)]


# -- the guard: no new sentinel references in src/ ----------------------------


class TestSentinelGuard:
    def test_null_int_references_confined_to_types_shim(self):
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            if path.name == "types.py" and path.parent.name == "repro":
                continue
            text = path.read_text()
            if "NULL_INT" in text or "NULL_FLOAT" in text or ".null_value(" in text:
                offenders.append(str(path.relative_to(SRC_ROOT)))
        assert offenders == [], (
            "sentinel references outside the types.py compat shim: "
            f"{offenders} — use validity bitmaps, not magic values"
        )
