"""Tests for the always-on flight recorder (repro.obs.flightrec).

Ring semantics first (recent is FIFO-bounded, slow queries survive recent
eviction), then the engine integration (every execute lands a record, the
slow threshold honors ``EngineConfig.slow_query_ms``, traced runs retain
their span tree), and finally the failure-artifact path: a fuzz campaign
against a broken engine must archive the oracle engines' flight dumps
next to the corpus entry.
"""

from __future__ import annotations

import json

import pytest

from repro import GES, EngineConfig
from repro.exec.base import ExecStats
from repro.ldbc import generate
from repro.obs.flightrec import (
    FLIGHT_DUMP_SCHEMA_VERSION,
    FlightRecorder,
    render_flight_dump,
)


def _observe(recorder: FlightRecorder, n: int, seconds: float = 0.001) -> None:
    for i in range(n):
        recorder.record(
            query=f"q{i}", variant="GES", seconds=seconds, rows=i,
            stats=ExecStats(),
        )


class TestRingSemantics:
    def test_recent_ring_is_bounded_fifo(self):
        recorder = FlightRecorder(capacity=4, slow_ms=50.0)
        _observe(recorder, 10)
        assert recorder.recorded == 10
        assert [r.query for r in recorder.recent] == ["q6", "q7", "q8", "q9"]

    def test_slow_queries_survive_recent_eviction(self):
        recorder = FlightRecorder(capacity=4, slow_ms=50.0)
        recorder.record(
            query="slow one", variant="GES", seconds=0.2, rows=1,
            stats=ExecStats(),
        )
        _observe(recorder, 10)  # fast queries cycle the recent ring
        assert all(r.query != "slow one" for r in recorder.recent)
        assert [r.query for r in recorder.slow] == ["slow one"]
        assert recorder.slow_recorded == 1

    def test_slow_threshold_is_exclusive(self):
        recorder = FlightRecorder(capacity=4, slow_ms=50.0)
        recorder.record("at", "GES", seconds=0.050, rows=0, stats=ExecStats())
        recorder.record("above", "GES", seconds=0.051, rows=0, stats=ExecStats())
        assert [r.query for r in recorder.slow] == ["above"]

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_clear_keeps_lifetime_counters(self):
        recorder = FlightRecorder(capacity=4)
        _observe(recorder, 3)
        recorder.clear()
        assert len(recorder.recent) == 0
        assert recorder.recorded == 3

    def test_ops_tuple_is_copied_not_aliased(self):
        recorder = FlightRecorder(capacity=4)
        stats = ExecStats()
        stats.record_op("NodeScan", 0.001, 64)
        record = recorder.record("q", "GES", 0.001, 1, stats)
        stats.record_op("Expand", 0.002, 128)  # later stage appends
        assert len(record.ops) == 1


class TestDumpShape:
    def test_dump_is_json_ready_and_versioned(self):
        recorder = FlightRecorder(capacity=4, slow_ms=0.0)
        _observe(recorder, 2)
        dump = recorder.dump()
        parsed = json.loads(json.dumps(dump))
        assert parsed["schema_version"] == FLIGHT_DUMP_SCHEMA_VERSION
        assert parsed["recorded"] == 2
        assert len(parsed["recent"]) == 2
        assert len(parsed["slow"]) == 2  # slow_ms=0 marks everything slow
        record = parsed["recent"][0]
        assert {"sequence", "query", "variant", "ms", "rows", "ops",
                "stats", "metrics", "span_tree"} <= set(record)

    def test_dump_last_trims_recent_not_slow(self):
        recorder = FlightRecorder(capacity=8, slow_ms=0.0)
        _observe(recorder, 6)
        dump = recorder.dump(last=2)
        assert [r["query"] for r in dump["recent"]] == ["q4", "q5"]
        assert len(dump["slow"]) == 6

    def test_render_is_human_readable(self):
        recorder = FlightRecorder(capacity=4)
        _observe(recorder, 2)
        text = render_flight_dump(recorder.dump())
        assert "flight recorder: 2 queries recorded" in text
        assert "q1" in text


@pytest.fixture(scope="module")
def dataset():
    return generate("SF1", seed=42)


class TestEngineIntegration:
    def test_every_execute_is_recorded(self, dataset):
        engine = GES(dataset.store, EngineConfig.ges_f_star())
        for _ in range(3):
            engine.execute("MATCH (p:Person) RETURN count(*) AS n")
        assert engine.flight is not None
        assert engine.flight.recorded == 3
        newest = engine.flight.recent[-1]
        assert newest.variant == "GES_f*"
        assert newest.rows == 1
        assert newest.seconds > 0

    def test_flight_recorder_can_be_disabled(self, dataset):
        engine = GES(dataset.store, EngineConfig.ges_f_star(flight_recorder=0))
        engine.execute("MATCH (p:Person) RETURN count(*) AS n")
        assert engine.flight is None

    def test_slow_query_ms_config_is_honored(self, dataset):
        # Threshold 0 ms: every real query exceeds it and lands in slow.
        engine = GES(
            dataset.store, EngineConfig.ges_f_star(slow_query_ms=0.0)
        )
        engine.execute("MATCH (p:Person) RETURN count(*) AS n")
        assert engine.flight.slow_recorded == 1

    def test_traced_query_retains_span_tree(self, dataset):
        config = EngineConfig.ges_f_star(tracing=True)
        engine = GES(dataset.store, config)
        engine.execute("MATCH (p:Person) RETURN count(*) AS n")
        record = engine.flight.recent[-1]
        assert record.trace_root is not None
        dumped = record.to_dict()
        assert dumped["span_tree"]["root"]["name"] == "query"

    def test_untraced_query_has_no_span_tree(self, dataset):
        engine = GES(dataset.store, EngineConfig.ges_f_star())
        engine.execute("MATCH (p:Person) RETURN count(*) AS n")
        assert engine.flight.recent[-1].trace_root is None

    def test_metrics_snapshot_travels_with_the_record(self, dataset):
        engine = GES(dataset.store, EngineConfig.ges_f_star(metrics=True))
        engine.execute("MATCH (p:Person) RETURN count(*) AS n")
        snapshot = engine.flight.recent[-1].metrics_snapshot
        assert snapshot["ges_queries_total"] >= 1

    def test_describe_reports_the_recorder(self, dataset):
        engine = GES(dataset.store, EngineConfig.ges_f_star())
        block = engine.describe()["flight_recorder"]
        assert block["capacity"] == 64
        assert block["slow_ms"] == 50.0


class TestFuzzArtifactAttachment:
    def test_failure_archives_flight_dumps(self, tmp_path):
        # Same broken-oracle pattern as test_testkit: a row-dropping engine
        # must fail the campaign AND leave flight dumps next to the entry.
        from tests.test_testkit import _broken_factory

        from repro.testkit import FuzzConfig, load_entries, run_fuzz

        config = FuzzConfig(
            seed=5, iterations=40, stress_runs=0, corpus_dir=tmp_path,
            shrink=False,
        )
        report = run_fuzz(config, oracle_factory=_broken_factory)
        assert not report.passed
        failure = report.failures[0]
        assert failure.flight_path is not None
        dumps = json.loads(failure.flight_path.read_text())
        # One dump per GES-variant oracle engine, each schema-versioned.
        assert set(dumps) & {"GES", "GES_f", "GES_f*"}
        for dump in dumps.values():
            assert dump["schema_version"] == FLIGHT_DUMP_SCHEMA_VERSION
            assert dump["recorded"] >= 1
        # The dumps live in a subdirectory the corpus loader ignores:
        # every loaded entry is a real repro, none is a flight dump.
        assert failure.flight_path.parent.name == "flightrec"
        entries = load_entries(tmp_path)
        assert len(entries) == len(report.failures)
        assert all(hasattr(entry, "signature") for entry in entries)


class TestFlightrecCli:
    def test_cli_text_and_json(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["flightrec", "--scale", "SF1", "--ops", "20"]) == 0
        assert "flight recorder:" in capsys.readouterr().out

        out = tmp_path / "dump.json"
        assert main([
            "flightrec", "--scale", "SF1", "--ops", "20",
            "--format", "json", "--out", str(out),
        ]) == 0
        dump = json.loads(out.read_text())
        assert dump["schema_version"] == FLIGHT_DUMP_SCHEMA_VERSION
        assert dump["recorded"] > 0
