"""Tests for the expression engine (vectorized + row evaluation agreement)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ExpressionError
from repro.plan.expressions import (
    Arith,
    BoolOp,
    Cmp,
    Col,
    Func,
    InSet,
    IsNull,
    Lit,
    Not,
    Param,
    col,
    lit,
    param,
)
from repro.types import DataType, NULL_INT, date_millis


class DictResolver:
    """Test resolver: NULL is a cleared validity bit, never a magic value."""

    def __init__(self, arrays, dtypes=None, validity=None):
        self._arrays = {k: np.asarray(v) for k, v in arrays.items()}
        self._dtypes = dtypes or {}
        self._validity = {
            k: np.asarray(v, dtype=bool) for k, v in (validity or {}).items()
        }

    def resolve(self, name):
        return self._arrays[name]

    def dtype_of(self, name):
        return self._dtypes.get(name, DataType.INT64)

    def validity_of(self, name):
        return self._validity.get(name)


# Column "a" has a NULL in its last slot, expressed via validity; the backing
# array keeps the legacy int sentinel as an inert fill value.
RESOLVER = DictResolver(
    {"a": [1, 2, 3, NULL_INT], "b": [3, 2, 1, 5]},
    validity={"a": [True, True, True, False]},
)


class TestBasics:
    def test_col_block(self):
        assert Col("a").eval_block(RESOLVER, {}).tolist() == [1, 2, 3, NULL_INT]

    def test_col_row(self):
        assert Col("a").eval_row({"a": 7}, {}) == 7

    def test_col_row_missing_raises(self):
        with pytest.raises(ExpressionError):
            Col("a").eval_row({}, {})

    def test_lit(self):
        assert Lit(5).eval_block(RESOLVER, {}) == 5
        assert Lit(5).eval_row({}, {}) == 5

    def test_param(self):
        assert Param("x").eval_row({}, {"x": 9}) == 9

    def test_unbound_param_raises(self):
        with pytest.raises(ExpressionError):
            Param("x").eval_row({}, {})

    def test_shorthands(self):
        assert isinstance(col("a"), Col)
        assert isinstance(lit(1), Lit)
        assert isinstance(param("p"), Param)


class TestComparison:
    def test_block_lt(self):
        # The last row's left operand is NULL: ordered comparisons against
        # NULL are false on both evaluation paths.
        out = (Col("a") < Col("b")).eval_block(RESOLVER, {})
        assert out.tolist() == [True, False, False, False]

    def test_block_null_comparison_matches_row(self):
        for op in ("<", "<=", ">", ">="):
            expr = Cmp(op, Col("a"), Col("b"))
            block = expr.eval_block(RESOLVER, {}).tolist()
            rows = [
                expr.eval_row({"a": a, "b": b}, {})
                for a, b in zip([1, 2, 3, None], [3, 2, 1, 5])
            ]
            assert block == rows

    def test_row_lt(self):
        assert (Col("a") < Lit(2)).eval_row({"a": 1}, {})

    def test_row_null_comparison_false(self):
        assert not (Col("a") < Lit(10)).eval_row({"a": None}, {})

    def test_eq_and_ne(self):
        assert (Col("a") == Lit(2)).eval_block(RESOLVER, {}).tolist() == [
            False, True, False, False,
        ]
        assert (Col("a") != Lit(2)).eval_row({"a": 3}, {})

    def test_string_comparison(self):
        resolver = DictResolver({"s": np.asarray(["x", "y"], dtype=object)})
        out = (Col("s") == Lit("y")).eval_block(resolver, {})
        assert out.tolist() == [False, True]

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Cmp("~", Col("a"), Lit(1))

    def test_dtype_is_bool(self):
        assert (Col("a") < Lit(1)).infer_dtype(lambda c: DataType.INT64, {}) is DataType.BOOL


class TestBoolOps:
    def test_and(self):
        expr = BoolOp("and", [Col("a") > Lit(1), Col("b") > Lit(1)])
        assert expr.eval_block(RESOLVER, {}).tolist() == [False, True, False, False]

    def test_or(self):
        expr = BoolOp("or", [Col("a") == Lit(1), Col("b") == Lit(1)])
        assert expr.eval_block(RESOLVER, {}).tolist() == [True, False, True, False]

    def test_not(self):
        expr = Not(Col("a") == Lit(1))
        assert expr.eval_row({"a": 2}, {})

    def test_columns_collected(self):
        expr = BoolOp("and", [Col("a") > Lit(0), Col("b") < Col("c")])
        assert expr.columns() == {"a", "b", "c"}

    def test_invalid_boolop(self):
        with pytest.raises(ExpressionError):
            BoolOp("xor", [Lit(True)])


class TestArith:
    def test_block(self):
        out = (Col("a") + Col("b")).eval_block(RESOLVER, {})
        assert out[:3].tolist() == [4, 4, 4]

    def test_row(self):
        assert (Col("a") * Lit(3)).eval_row({"a": 2}, {}) == 6

    def test_division_dtype_is_float(self):
        expr = Arith("/", Col("a"), Lit(2))
        assert expr.infer_dtype(lambda c: DataType.INT64, {}) is DataType.FLOAT64

    def test_int_dtype_preserved(self):
        expr = Col("a") - Lit(1)
        assert expr.infer_dtype(lambda c: DataType.INT64, {}) is DataType.INT64


class TestInSet:
    def test_block_membership(self):
        expr = InSet(Col("a"), Lit(frozenset({1, 3})))
        assert expr.eval_block(RESOLVER, {}).tolist() == [True, False, True, False]

    def test_negated(self):
        expr = InSet(Col("a"), Lit(frozenset({1})), negate=True)
        assert expr.eval_row({"a": 2}, {})

    def test_param_set(self):
        expr = InSet(Col("a"), Param("s"))
        assert expr.eval_row({"a": 5}, {"s": frozenset({5})})

    def test_object_values(self):
        resolver = DictResolver({"s": np.asarray(["x", "y"], dtype=object)})
        expr = InSet(Col("s"), Lit(frozenset({"y"})))
        assert expr.eval_block(resolver, {}).tolist() == [False, True]

    def test_empty_set(self):
        expr = InSet(Col("a"), Lit(frozenset()))
        assert expr.eval_block(RESOLVER, {}).tolist() == [False] * 4


class TestIsNull:
    def test_validity_bit(self):
        out = IsNull(Col("a")).eval_block(RESOLVER, {})
        assert out.tolist() == [False, False, False, True]

    def test_int_sentinel_value_is_data(self):
        # Regression: a legitimate int64-min value with its validity bit set
        # must NOT be treated as NULL (the old sentinel convention is dead).
        resolver = DictResolver({"a": [1, NULL_INT, 3]})
        out = IsNull(Col("a")).eval_block(resolver, {})
        assert out.tolist() == [False, False, False]

    def test_negated(self):
        out = IsNull(Col("a"), negate=True).eval_block(RESOLVER, {})
        assert out.tolist() == [True, True, True, False]

    def test_object_none(self):
        resolver = DictResolver({"s": np.asarray(["x", None], dtype=object)})
        assert IsNull(Col("s")).eval_block(resolver, {}).tolist() == [False, True]

    def test_float_nan(self):
        resolver = DictResolver({"f": np.asarray([1.0, float("nan")])})
        assert IsNull(Col("f")).eval_block(resolver, {}).tolist() == [False, True]

    def test_row(self):
        assert IsNull(Col("x")).eval_row({"x": None}, {})


class TestFuncs:
    def test_year_month_day(self):
        millis = date_millis(2012, 6, 15)
        resolver = DictResolver({"d": [millis]})
        assert Func("year", [Col("d")]).eval_block(resolver, {}).tolist() == [2012]
        assert Func("month", [Col("d")]).eval_block(resolver, {}).tolist() == [6]
        assert Func("day", [Col("d")]).eval_block(resolver, {}).tolist() == [15]

    def test_row_mode_matches_block(self):
        millis = date_millis(1999, 12, 31)
        for unit in ("year", "month", "day"):
            expr = Func(unit, [Col("d")])
            block = expr.eval_block(DictResolver({"d": [millis]}), {})
            assert expr.eval_row({"d": millis}, {}) == block[0]

    def test_abs(self):
        out = Func("abs", [Col("a")]).eval_block(DictResolver({"a": [-3, 4]}), {})
        assert out.tolist() == [3, 4]

    def test_unknown_function(self):
        with pytest.raises(ExpressionError):
            Func("frobnicate", [Lit(1)])


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=30),
       st.integers(-100, 100))
def test_block_and_row_eval_agree(values, threshold):
    """Vectorized and tuple-at-a-time evaluation produce identical booleans."""
    expr = BoolOp(
        "or",
        [Col("v") > Lit(threshold), BoolOp("and", [Col("v") < Lit(0), Not(Col("v") == Lit(-1))])],
    )
    resolver = DictResolver({"v": values})
    block = expr.eval_block(resolver, {}).tolist()
    rows = [expr.eval_row({"v": v}, {}) for v in values]
    assert block == rows
