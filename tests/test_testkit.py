"""Tests for the differential fuzzing harness (repro.testkit).

The decisive test here is the injected-bug pipeline: a deliberately broken
executor wired into the oracle's engine map must be caught by the fuzz
loop, minimized by the shrinker, archived as a self-contained corpus
entry, and reproduced by replaying that entry — while the same entry
replays clean against the healthy engines.
"""

from __future__ import annotations

import random

import pytest

from repro.cli import main
from repro.obs.metrics import REGISTRY
from repro.plan.expressions import Col, InSet, Lit
from repro.plan.logical import Filter, LogicalPlan, NodeScan
from repro.testkit import (
    DifferentialOracle,
    FuzzConfig,
    GeneratedQuery,
    QueryGenerator,
    StressConfig,
    UpdateGenerator,
    deserialize_plan,
    fuzz_schema,
    generate_store,
    load_entries,
    replay_entry,
    run_fuzz,
    run_stress,
    serialize_plan,
    store_from_spec,
)
from repro.testkit.corpus import make_entry, save_entry
from repro.testkit.graphgen import PROFILES, random_graph_spec
from repro.testkit.shrink import failure_signature, shrink_failure
from repro.txn.transaction import TransactionManager


# -- plan serde ------------------------------------------------------------------


def _generated_plans(seed: int, n: int) -> list[GeneratedQuery]:
    schema = fuzz_schema()
    store, spec = generate_store(seed, schema, "quick")
    gen = QueryGenerator(schema, random.Random(f"{seed}:serde"))
    return [gen.query(spec) for _ in range(n)]


class TestPlanSerde:
    def test_generated_plans_round_trip(self):
        for query in _generated_plans(11, 40):
            payload = query.to_json()
            rebuilt = GeneratedQuery.from_json(payload)
            assert rebuilt.to_json() == payload

    def test_container_literals_round_trip(self):
        plan = LogicalPlan(
            [
                NodeScan("p", "Person"),
                Filter(InSet(Col("p"), Lit(frozenset({3, 1, 2})))),
            ],
            returns=["p"],
        )
        payload = serialize_plan(plan)
        rebuilt = serialize_plan(deserialize_plan(payload))
        assert rebuilt == payload
        expr = deserialize_plan(payload).ops[1].expr
        assert expr.values.value == frozenset({1, 2, 3})

    def test_tuple_literal_round_trip(self):
        plan = LogicalPlan(
            [NodeScan("p", "Person"), Filter(InSet(Col("p"), Lit((2, 0))))]
        )
        rebuilt = deserialize_plan(serialize_plan(plan))
        assert rebuilt.ops[1].expr.values.value == (0, 2)


# -- oracle ----------------------------------------------------------------------


class _RowDropper:
    """A broken engine: silently drops the last result row."""

    def __init__(self, inner):
        self._inner = inner

    def compile(self, text):
        return self._inner.compile(text)

    def execute(self, runnable, params=None, view=None, **kwargs):
        result = self._inner.execute(runnable, params, view=view, **kwargs)
        if result.rows:
            class _Tampered:
                columns = result.columns
                rows = result.rows[:-1]

            return _Tampered()
        return result


def _broken_factory(store) -> DifferentialOracle:
    oracle = DifferentialOracle(store)
    oracle.engines["GES_f*"] = _RowDropper(oracle.engines["GES_f*"])
    return oracle


class TestDifferentialOracle:
    def test_clean_engines_agree(self):
        schema = fuzz_schema()
        store, spec = generate_store(21, schema, "quick")
        oracle = DifferentialOracle(store)
        gen = QueryGenerator(schema, random.Random("21:oracle"))
        for _ in range(25):
            assert oracle.check(gen.query(spec)) == []

    def test_injected_bug_is_caught(self):
        schema = fuzz_schema()
        store, spec = generate_store(22, schema, "quick")
        oracle = _broken_factory(store)
        gen = QueryGenerator(schema, random.Random("22:oracle"))
        kinds = set()
        for _ in range(40):
            for mismatch in oracle.check(gen.query(spec)):
                kinds.add(mismatch.signature)
        assert ("rows", "GES_f*") in kinds

    def test_unknown_baseline_rejected(self):
        store, _ = generate_store(1, fuzz_schema(), "quick")
        with pytest.raises(ValueError):
            DifferentialOracle(store, baseline="nope")


# -- fuzz loop: catch -> shrink -> archive -> replay ------------------------------


class TestInjectedBugPipeline:
    def test_full_pipeline(self, tmp_path):
        config = FuzzConfig(
            seed=5, iterations=40, stress_runs=0, corpus_dir=tmp_path
        )
        report = run_fuzz(config, oracle_factory=_broken_factory)
        assert not report.passed
        assert report.failures

        entries = load_entries(tmp_path)
        assert entries, "a minimized repro should have been archived"
        entry = entries[0]
        assert entry.name.startswith("fuzz-")
        # The shrinker got the graph well below the generated sizes.
        assert entry.spec.total_vertices() <= 10

        # Replaying against the broken engines reproduces the signature...
        replayed = replay_entry(entry, _broken_factory)
        captured = {tuple(pair) for pair in entry.signature}
        assert captured <= failure_signature(replayed)
        # ...and against the healthy engines the repro is clean ("fixed").
        assert replay_entry(entry) == []

    def test_fuzz_counters_registered(self):
        run_fuzz(FuzzConfig(seed=9, iterations=5, stress_runs=0))
        names = {family.name for family in REGISTRY.families()}
        assert "ges_fuzz_queries_total" in names
        assert "ges_fuzz_mismatches_total" in names
        assert REGISTRY.get("ges_fuzz_queries_total") is not None

    def test_clean_run_passes(self):
        report = run_fuzz(FuzzConfig(seed=4, iterations=30, stress_runs=1))
        assert report.passed, report.summary()
        assert report.queries_checked == 30


class TestShrinker:
    def test_shrunk_triple_still_reproduces(self):
        schema = fuzz_schema()
        spec = random_graph_spec(
            random.Random("shrink:graph"), schema, PROFILES["quick"], seed=77
        )
        store = store_from_spec(spec)
        oracle = _broken_factory(store)
        gen = QueryGenerator(schema, random.Random("shrink:q"))
        query, mismatches = None, []
        for _ in range(40):
            candidate = gen.query(spec)
            mismatches = oracle.check(candidate)
            if mismatches:
                query = candidate
                break
        assert query is not None, "row-dropper never produced a mismatch"
        s_query, s_spec, s_updates = shrink_failure(
            query, spec, mismatches, oracle_factory=_broken_factory
        )
        assert s_spec.total_vertices() <= spec.total_vertices()
        from repro.testkit.shrink import replay

        found = failure_signature(replay(s_query, s_spec, s_updates, _broken_factory))
        assert failure_signature(mismatches) <= found


# -- update batches ---------------------------------------------------------------


class TestUpdateBatches:
    def test_batches_round_trip_and_apply(self):
        schema = fuzz_schema()
        store, spec = generate_store(31, schema, "quick")
        ugen = UpdateGenerator(
            schema, random.Random("31:updates"), spec, PROFILES["quick"]
        )
        manager = TransactionManager(store)
        for _ in range(5):
            batch = ugen.batch()
            rebuilt = type(batch).from_json(batch.to_json())
            assert rebuilt.to_json() == batch.to_json()
            batch.apply(manager)
        assert manager.versions.current() == 5

    def test_oracle_checks_post_update_snapshots(self):
        report = run_fuzz(
            FuzzConfig(seed=13, iterations=40, update_rate=0.8, stress_runs=0)
        )
        assert report.passed, report.summary()
        assert report.updates_applied > 0


# -- stress -----------------------------------------------------------------------


class TestStress:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_invariants_hold(self, seed):
        report = run_stress(StressConfig(seed=seed))
        assert report.passed, "\n".join(report.violations[:5])
        assert report.commits > 0 and report.reads > 0

    def test_same_seed_same_interleaving(self):
        a = run_stress(StressConfig(seed=6))
        b = run_stress(StressConfig(seed=6))
        assert (a.commits, a.reads, a.gc_runs, a.gc_released, a.final_version) == (
            b.commits,
            b.reads,
            b.gc_runs,
            b.gc_released,
            b.final_version,
        )

    def test_gc_actually_prunes(self):
        report = run_stress(StressConfig(seed=2, gc_rounds=12))
        assert report.passed
        assert report.gc_runs > 0


# -- corpus entries ---------------------------------------------------------------


class TestCorpus:
    def test_entry_name_is_content_addressed(self):
        schema = fuzz_schema()
        _, spec = generate_store(41, schema, "quick")
        gen = QueryGenerator(schema, random.Random("41:c"))
        query = gen.query(spec)
        one = make_entry(query, spec, [])
        two = make_entry(query, spec, [])
        assert one.name == two.name

    def test_save_is_idempotent(self, tmp_path):
        schema = fuzz_schema()
        _, spec = generate_store(42, schema, "quick")
        query = QueryGenerator(schema, random.Random("42:c")).query(spec)
        entry = make_entry(query, spec, [])
        first = save_entry(entry, tmp_path)
        second = save_entry(entry, tmp_path)
        assert first == second
        assert len(list(tmp_path.glob("*.json"))) == 1


# -- CLI --------------------------------------------------------------------------


class TestFuzzCli:
    def test_repro_fuzz_passes(self, capsys):
        code = main(["fuzz", "--seed", "0", "--iterations", "20", "--stress-runs", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out and "20 queries" in out

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--profile", "galactic", "--iterations", "1"])
