"""Tests for the Cypher lexer, parser, binder, and end-to-end execution."""

import pytest

from repro.errors import CypherSyntaxError, CypherUnsupportedError, PlanError
from repro.frontend.cypher import compile_cypher, parse_cypher
from repro.frontend.cypher import ast
from repro.frontend.cypher.lexer import TokenType, tokenize
from repro.plan import (
    Aggregate,
    Expand,
    Filter,
    GetProperty,
    Limit,
    NodeByIdSeek,
    NodeScan,
    OrderBy,
    plan_summary,
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("match RETURN Where")
        assert [t.value for t in tokens[:-1]] == ["MATCH", "RETURN", "WHERE"]

    def test_identifiers(self):
        tokens = tokenize("foo _bar x1")
        assert all(t.type is TokenType.IDENT for t in tokens[:-1])

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].type is TokenType.INT
        assert tokens[1].type is TokenType.FLOAT

    def test_range_not_a_float(self):
        tokens = tokenize("1..2")
        assert [t.value for t in tokens[:-1]] == ["1", "..", "2"]

    def test_strings_with_both_quotes(self):
        assert tokenize("'ab'")[0].value == "ab"
        assert tokenize('"cd"')[0].value == "cd"

    def test_string_escape(self):
        assert tokenize(r"'a\'b'")[0].value == "a'b"

    def test_unterminated_string(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("'oops")

    def test_params(self):
        token = tokenize("$personId")[0]
        assert token.type is TokenType.PARAM and token.value == "personId"

    def test_empty_param_rejected(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("$ x")

    def test_two_char_symbols(self):
        tokens = tokenize("<= >= <> -> <-")
        assert [t.value for t in tokens[:-1]] == ["<=", ">=", "<>", "->", "<-"]

    def test_comment_skipped(self):
        tokens = tokenize("MATCH // a comment\nRETURN")
        assert [t.value for t in tokens[:-1]] == ["MATCH", "RETURN"]

    def test_junk_rejected(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("MATCH @")


class TestParser:
    def test_simple_query_shape(self):
        query = parse_cypher("MATCH (p:Person) RETURN id(p)")
        assert len(query.clauses) == 2
        match, ret = query.clauses
        assert isinstance(match, ast.MatchClause)
        assert match.path.nodes[0].label == "Person"
        assert isinstance(ret, ast.ReturnClause)

    def test_relationship_directions(self):
        query = parse_cypher(
            "MATCH (a:Person)-[:KNOWS]->(b)<-[:HAS_CREATOR]-(m) RETURN id(m)"
        )
        rels = query.clauses[0].path.rels
        assert rels[0].direction == "out"
        assert rels[1].direction == "in"

    def test_variable_length(self):
        query = parse_cypher("MATCH (a:Person)-[:KNOWS*1..3]->(b) RETURN id(b)")
        rel = query.clauses[0].path.rels[0]
        assert (rel.min_hops, rel.max_hops) == (1, 3)

    def test_where_precedence(self):
        query = parse_cypher(
            "MATCH (a:Person) WHERE a.age > 1 AND a.age < 5 OR NOT a.age = 3 RETURN id(a)"
        )
        where = query.clauses[0].where
        assert isinstance(where, ast.BinaryOp) and where.op == "OR"
        assert isinstance(where.left, ast.BinaryOp) and where.left.op == "AND"

    def test_order_and_limit(self):
        query = parse_cypher(
            "MATCH (a:Person) RETURN a.age AS age ORDER BY age DESC LIMIT 7"
        )
        ret = query.clauses[-1]
        assert ret.order[0].ascending is False
        assert ret.limit == 7

    def test_aggregates(self):
        query = parse_cypher("MATCH (a:Person) RETURN count(*) AS n")
        agg = query.clauses[-1].items[0].expr
        assert isinstance(agg, ast.AggCall) and agg.arg is None

    def test_count_distinct(self):
        query = parse_cypher("MATCH (a:Person) RETURN count(DISTINCT a.age) AS n")
        agg = query.clauses[-1].items[0].expr
        assert agg.distinct

    def test_is_null(self):
        query = parse_cypher("MATCH (a:Person) WHERE a.age IS NOT NULL RETURN id(a)")
        where = query.clauses[0].where
        assert isinstance(where, ast.IsNullOp) and where.negate

    def test_missing_return_rejected(self):
        with pytest.raises(CypherUnsupportedError):
            parse_cypher("MATCH (a:Person)")

    def test_property_map_parsed(self):
        query = parse_cypher("MATCH (a:Person {id: 3, age: $x}) RETURN id(a)")
        node = query.clauses[0].path.nodes[0]
        assert set(node.properties) == {"id", "age"}

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse_cypher("MATCH (a:Person) RETURN id(a) nonsense")

    def test_with_clause(self):
        query = parse_cypher("MATCH (a:Person) WITH a WHERE a.age > 1 RETURN id(a)")
        assert isinstance(query.clauses[1], ast.WithClause)


class TestBinder:
    def test_id_seek_recognized(self, micro_schema):
        plan = compile_cypher(
            "MATCH (p:Person) WHERE id(p) = $pid RETURN id(p)", micro_schema
        )
        assert isinstance(plan.ops[0], NodeByIdSeek)

    def test_primary_key_property_seek(self, micro_schema):
        plan = compile_cypher(
            "MATCH (p:Person) WHERE p.id = 3 RETURN p.age", micro_schema
        )
        assert isinstance(plan.ops[0], NodeByIdSeek)

    def test_property_map_becomes_seek(self, micro_schema):
        plan = compile_cypher("MATCH (p:Person {id: $pid}) RETURN p.age", micro_schema)
        assert isinstance(plan.ops[0], NodeByIdSeek)

    def test_property_map_non_pk_becomes_filter(self, micro_schema, micro_engines):
        rows = micro_engines["GES_f*"].execute(
            "MATCH (p:Person {firstName: 'B'}) RETURN id(p) ORDER BY id(p)"
        ).rows
        assert rows == [(1,), (3,)]

    def test_property_map_on_expanded_node(self, micro_engines):
        rows = micro_engines["GES_f*"].execute(
            "MATCH (p:Person {id: 0})-[:KNOWS]->(f:Person {firstName: 'C'}) "
            "RETURN id(f)"
        ).rows
        assert rows == [(2,)]

    def test_scan_without_seek(self, micro_schema):
        plan = compile_cypher("MATCH (p:Person) RETURN id(p)", micro_schema)
        assert isinstance(plan.ops[0], NodeScan)

    def test_property_fetched_once(self, micro_schema):
        plan = compile_cypher(
            "MATCH (p:Person) WHERE p.age > 1 RETURN p.age ORDER BY p.age", micro_schema
        )
        getters = [op for op in plan.ops if isinstance(op, GetProperty)]
        assert len(getters) == 1

    def test_expand_labels_inferred(self, micro_schema):
        plan = compile_cypher(
            "MATCH (p:Person)<-[:HAS_CREATOR]-(m) RETURN id(m)", micro_schema
        )
        expands = [op for op in plan.ops if isinstance(op, Expand)]
        assert expands[0].to_label is None or expands[0].to_label == "Message"
        # label must resolve during binding for id(m) to find the pk
        assert any(isinstance(op, GetProperty) and op.prop == "id" for op in plan.ops)

    def test_aggregate_grouping(self, micro_schema):
        plan = compile_cypher(
            "MATCH (p:Person) RETURN p.firstName AS name, count(*) AS n", micro_schema
        )
        aggregates = [op for op in plan.ops if isinstance(op, Aggregate)]
        assert aggregates[0].group_by == ["p.firstName"]

    def test_unknown_property_rejected(self, micro_schema):
        with pytest.raises(Exception):
            compile_cypher("MATCH (p:Person) RETURN p.ghost", micro_schema)

    def test_unknown_variable_rejected(self, micro_schema):
        with pytest.raises(PlanError):
            compile_cypher("MATCH (p:Person) RETURN id(q)", micro_schema)

    def test_unlabeled_start_rejected(self, micro_schema):
        with pytest.raises(CypherUnsupportedError):
            compile_cypher("MATCH (p) RETURN id(p)", micro_schema)

    def test_order_by_unreturned_key_rejected(self, micro_schema):
        with pytest.raises(CypherUnsupportedError):
            compile_cypher(
                "MATCH (p:Person) RETURN id(p) ORDER BY p.age", micro_schema
            )

    def test_revisited_variable_rejected(self, micro_schema):
        with pytest.raises(CypherUnsupportedError):
            compile_cypher(
                "MATCH (p:Person)-[:KNOWS]->(q)-[:KNOWS]->(p) RETURN id(p)",
                micro_schema,
            )


class TestEndToEnd:
    def test_full_query_on_all_variants(self, micro_engines):
        query = """
        MATCH (p:Person)-[:KNOWS*1..2]->(f)
        WHERE id(p) = $pid
        MATCH (f)<-[:HAS_CREATOR]-(msg)
        WHERE msg.length > 125
        RETURN id(f) AS fid, id(msg) AS mid, msg.length AS len
        ORDER BY len DESC, fid ASC
        LIMIT 2
        """
        results = {
            name: engine.execute(query, {"pid": 0}).rows
            for name, engine in micro_engines.items()
            if name != "Volcano"  # Volcano takes plans, not Cypher
        }
        expected = [(3, 103, 200), (1, 100, 140)]
        assert all(rows == expected for rows in results.values())

    def test_aggregate_query(self, micro_engines):
        query = """
        MATCH (p:Person)<-[:HAS_CREATOR]-(m)
        RETURN p.firstName AS name, count(*) AS n
        ORDER BY n DESC, name ASC
        LIMIT 3
        """
        rows = micro_engines["GES_f*"].execute(query).rows
        assert rows == [("B", 3), ("C", 2), ("E", 1)]

    def test_with_distinct(self, micro_engines):
        query = """
        MATCH (p:Person)
        WITH DISTINCT p.firstName AS name
        RETURN name ORDER BY name
        """
        rows = micro_engines["GES"].execute(query).rows
        assert rows == [("A",), ("B",), ("C",), ("E",)]
