"""Adversarial WAL tails: every byte of damage, deterministically survived.

The contract under test (ISSUE satellite): for *any* corruption of a WAL
segment's tail — truncation at an arbitrary byte offset, a flipped bit
anywhere in a record, a duplicated record — recovery keeps exactly the
longest valid record prefix, the same one every time, and ``fsck`` names
the precise byte offset a repair truncates at.  The golden segment is
built once through the real engine (``GES.open`` + commits), then every
test mutilates byte-level copies of the whole database directory.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import GES, EngineConfig
from repro.durability import fsck, recover
from repro.durability.checkpoint import wal_dir
from repro.durability.wal import (
    HEADER_SIZE,
    WalWriter,
    create_segment,
    encode_record,
    scan_segment,
)
from repro.errors import StorageError, WalCorrupt
from repro.testkit import store_digest
from repro.txn.transaction import TransactionManager

from .conftest import build_micro_store

#: Commits in the golden WAL (each adds one Person vertex).
COMMITS = 4


def _apply_commit(manager: TransactionManager, index: int) -> int:
    txn = manager.begin()
    txn.add_vertex(
        "Person",
        {"id": 5000 + index, "firstName": f"wal{index}", "age": 20 + index},
    )
    return txn.commit()


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """A durable db with COMMITS WAL records, plus per-version digests."""
    db = tmp_path_factory.mktemp("wal-golden") / "db"
    engine = GES.open(
        db,
        config=EngineConfig.ges(metrics=False, flight_recorder=0, durability="fsync"),
        schema=build_micro_store(),
    )
    for index in range(COMMITS):
        _apply_commit(engine.txn_manager, index)
    engine.close()

    segment = wal_dir(db) / "wal-000000000000.log"
    scan = scan_segment(segment)
    assert scan.clean and len(scan.records) == COMMITS

    digests = {}
    for version in range(COMMITS + 1):
        reference = build_micro_store()
        manager = TransactionManager(reference)
        for index in range(version):
            _apply_commit(manager, index)
        digests[version] = store_digest(reference)

    return {
        "db": db,
        "segment_bytes": segment.read_bytes(),
        "records": [(r.offset, r.offset + r.length, r.version) for r in scan.records],
        "digests": digests,
    }


def _clone(golden, tmp_path: Path, segment_bytes: bytes) -> Path:
    """Copy the golden db and swap in a mutilated WAL segment."""
    db = tmp_path / "db"
    shutil.copytree(golden["db"], db)
    (wal_dir(db) / "wal-000000000000.log").write_bytes(segment_bytes)
    return db


def _surviving_version(golden, prefix_length: int) -> int:
    """Highest version whose record fits entirely below *prefix_length*."""
    version = 0
    for _, end, record_version in golden["records"]:
        if end <= prefix_length:
            version = record_version
    return version


class TestTruncateEveryOffset:
    def test_every_truncation_keeps_longest_valid_prefix(self, golden, tmp_path):
        """The exhaustive sweep: cut the segment at *every* byte offset."""
        data = golden["segment_bytes"]
        for offset in range(HEADER_SIZE, len(data) + 1):
            db = _clone(golden, tmp_path / f"o{offset}", data[:offset])
            result = recover(db)
            expected = _surviving_version(golden, offset)
            boundary = any(end == offset for _, end, _ in golden["records"]) or (
                offset == HEADER_SIZE
            )
            assert result.version == expected, f"offset {offset}"
            assert store_digest(result.store) == golden["digests"][expected], (
                f"offset {offset}: digest diverges at v{expected}"
            )
            # Repair truncated to the valid prefix; a second recovery of
            # the repaired directory is a fixpoint (same version, clean).
            rescan = scan_segment(wal_dir(db) / "wal-000000000000.log")
            assert rescan.clean
            assert (not boundary) == (result.repaired != [])
            again = recover(db)
            assert again.version == expected
            shutil.rmtree(db)

    def test_truncation_below_header_is_typed(self, golden, tmp_path):
        data = golden["segment_bytes"]
        db = _clone(golden, tmp_path, data[: HEADER_SIZE - 1])
        with pytest.raises(WalCorrupt, match="shorter than its header"):
            recover(db)


class TestBitFlips:
    def test_flip_any_byte_never_yields_garbage(self, golden, tmp_path):
        """Flip one bit in every record byte: the damaged record and its
        successors drop; everything before survives bit-for-bit."""
        data = bytearray(golden["segment_bytes"])
        for offset in range(HEADER_SIZE, len(data)):
            flipped = bytearray(data)
            flipped[offset] ^= 0x40
            scan_path = tmp_path / "scan.log"
            scan_path.write_bytes(bytes(flipped))
            scan = scan_segment(scan_path)
            damaged_from = next(
                start
                for start, end, _ in golden["records"]
                if start <= offset < end
            )
            surviving = [
                v for start, end, v in golden["records"] if end <= damaged_from
            ]
            got = [record.version for record in scan.records]
            # A flip may cascade (e.g. a grown length word swallows the
            # next record) but can never manufacture an extra valid one.
            assert got == surviving or got == surviving[: len(got)]
            assert not scan.clean
            assert scan.torn_offset is not None

    def test_recovery_after_mid_record_flip(self, golden, tmp_path):
        data = bytearray(golden["segment_bytes"])
        start, end, _ = golden["records"][2]
        data[(start + end) // 2] ^= 0x01
        db = _clone(golden, tmp_path, bytes(data))
        result = recover(db)
        assert result.version == 2
        assert store_digest(result.store) == golden["digests"][2]
        assert result.repaired == ["wal-000000000000.log"]

    def test_flipped_length_word_cannot_balloon(self, golden, tmp_path):
        """A corrupt length prefix must not trigger a giant allocation."""
        data = bytearray(golden["segment_bytes"])
        start, _, _ = golden["records"][-1]
        data[start : start + 4] = (0xFFFFFFF0).to_bytes(4, "little")
        path = tmp_path / "balloon.log"
        path.write_bytes(bytes(data))
        scan = scan_segment(path)
        assert scan.torn_reason.startswith("implausible record length")
        assert [r.version for r in scan.records] == [1, 2, 3]


class TestDuplicatesAndAppends:
    def test_duplicated_last_record_dedups_by_version(self, golden, tmp_path):
        data = golden["segment_bytes"]
        start, end, _ = golden["records"][-1]
        db = _clone(golden, tmp_path, data + data[start:end])
        result = recover(db)
        assert result.version == COMMITS
        assert result.skipped >= 1  # the duplicate applied nothing
        assert store_digest(result.store) == golden["digests"][COMMITS]
        assert fsck(db).ok  # a duplicate is valid bytes, not damage

    def test_garbage_tail_is_torn_not_fatal(self, golden, tmp_path):
        db = _clone(golden, tmp_path, golden["segment_bytes"] + b"\x07garbage")
        report = fsck(db)
        assert not report.ok
        torn = report.segments[-1]
        assert torn["torn_offset"] == len(golden["segment_bytes"])
        result = recover(db)
        assert result.version == COMMITS

    def test_foreign_magic_is_not_a_wal(self, golden, tmp_path):
        data = bytearray(golden["segment_bytes"])
        data[:4] = b"NOPE"
        path = tmp_path / "foreign.log"
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorrupt, match="bad magic"):
            scan_segment(path)
        # fsck degrades to a problem report instead of raising.
        db = _clone(golden, tmp_path, bytes(data))
        report = fsck(db)
        assert not report.ok and any("magic" in p for p in report.problems)


class TestFsckNamesTheTear:
    def test_exact_torn_offset_reported(self, golden, tmp_path):
        """fsck's problem line carries the byte offset of the tear."""
        start, end, _ = golden["records"][1]
        cut = (start + end) // 2
        db = _clone(golden, tmp_path, golden["segment_bytes"][:cut])
        report = fsck(db)
        assert not report.ok
        assert any(f"torn at byte {start}" in p for p in report.problems)
        entry = report.segments[-1]
        assert entry["torn_offset"] == start
        assert entry["valid_length"] == start
        assert entry["records"] == 1


# -- property-based: random payloads and random damage ------------------------------


@st.composite
def payloads(draw):
    """Random JSON-safe commit-like payloads with increasing versions."""
    count = draw(st.integers(min_value=1, max_value=6))
    bodies = []
    for version in range(1, count + 1):
        noise = draw(
            st.dictionaries(
                st.text(
                    alphabet=st.characters(codec="ascii", categories=["L", "N"]),
                    min_size=1,
                    max_size=8,
                ),
                st.one_of(
                    st.integers(-(2**31), 2**31),
                    st.text(max_size=16),
                    st.none(),
                    st.booleans(),
                ),
                max_size=4,
            )
        )
        bodies.append({"v": version, "noise": noise})
    return bodies


@given(bodies=payloads())
@settings(max_examples=40, deadline=None)
def test_writer_roundtrip_any_payload(tmp_path_factory, bodies):
    """Whatever JSON goes in comes back, in order, clean."""
    wals = tmp_path_factory.mktemp("wal-prop")
    writer = WalWriter.create(wals, epoch=0, mode="batch", batch_every=3)
    for body in bodies:
        writer.append(body)
    writer.close()
    scan = scan_segment(wals / "wal-000000000000.log")
    assert scan.clean
    assert [record.payload for record in scan.records] == bodies


@given(
    bodies=payloads(),
    junk=st.binary(min_size=1, max_size=64),
    cut_back=st.integers(min_value=0, max_value=32),
)
@settings(max_examples=40, deadline=None)
def test_random_tail_damage_keeps_valid_prefix(
    tmp_path_factory, bodies, junk, cut_back
):
    """Truncate-then-append-junk: the valid record prefix always survives
    whole, and the tear lands at or after the last valid record's end."""
    wals = tmp_path_factory.mktemp("wal-prop-dmg")
    path = create_segment(wals, epoch=0)
    with open(path, "ab") as handle:
        for body in bodies:
            import json as json_mod

            handle.write(
                encode_record(
                    json_mod.dumps(body, separators=(",", ":")).encode()
                )
            )
    pristine = path.read_bytes()
    cut = max(HEADER_SIZE, len(pristine) - cut_back)
    path.write_bytes(pristine[:cut] + junk)
    try:
        scan = scan_segment(path)
    except (StorageError, WalCorrupt):
        pytest.fail("tail damage must never raise from scan_segment")
    versions = [record.payload["v"] for record in scan.records]
    assert versions == list(range(1, len(versions) + 1))
    assert scan.valid_length >= HEADER_SIZE
    # Scanning is deterministic: same bytes, same verdict.
    again = scan_segment(path)
    assert [r.offset for r in again.records] == [r.offset for r in scan.records]
    assert again.torn_offset == scan.torn_offset
