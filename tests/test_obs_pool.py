"""Cross-process observability: span grafting, delta merges, event order.

Pooled execution must be as observable as in-process execution
(DESIGN.md "Distributed observability"): workers capture span trees,
counter deltas, and lifecycle events per task and ship them with the
reply; the coordinator grafts the spans under its ``pooled`` dispatch
span, applies the deltas exactly once, and folds the events into the
service-wide log.  These tests pin the three hard guarantees:

* **graft shape** — every partition of a scattered query contributes a
  worker-attributed subtree of *real* operator spans (no stub nodes),
  across worker counts and partition kinds;
* **exactly-once deltas** — a ``kill -9`` mid-task ships nothing, so a
  crashed-and-respawned worker can never double-count into the
  coordinator registry;
* **deterministic event order** — one chaos seed produces one exact
  ``(kind, attrs)`` event sequence, run to run.

Crash tests carry the ``parallel`` marker (they hold tasks open).
"""

from __future__ import annotations

import io
import os
import signal
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.engine.config import EngineConfig
from repro.engine.service import GraphEngineService
from repro.errors import WorkerCrash
from repro.exec.base import ExecStats
from repro.obs.events import EVENTS
from repro.obs.export import prometheus_text
from repro.obs.flightrec import render_flight_dump
from repro.obs.metrics import REGISTRY
from repro.obs.top import render_top_frame, run_top
from repro.parallel.pool import SnapshotTask
from repro.testkit.graphgen import generate_store


def _pooled(store, workers=2, **knobs):
    return GraphEngineService(
        store,
        EngineConfig.ges(workers=workers, scatter_min_rows=1, **knobs),
    )


def _count_query(store) -> str:
    # The largest label: enough source rows that the scatter can fan out
    # across every partition even at 4 workers.
    label = max(
        store.schema.vertex_labels, key=lambda lab: len(store.table(lab))
    )
    return f"MATCH (v:{label}) RETURN count(v)"


def _counter_value(name: str, **labels) -> float:
    """Current value of one counter instrument (0.0 when absent)."""
    family = REGISTRY.get(name)
    if family is None:
        return 0.0
    for have, instrument in family.instruments.items():
        if all(dict(have).get(k) == v for k, v in labels.items()):
            return float(instrument.value)
    return 0.0


# ---------------------------------------------------------------------------
# Span grafting: worker subtrees under the coordinator's dispatch span


class TestSpanGraft:
    @pytest.mark.parametrize("kind", ["range", "hash"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_scatter_grafts_one_worker_subtree_per_partition(
        self, workers, kind
    ):
        store, _ = generate_store(5)
        engine = _pooled(store, workers=workers, partition_kind=kind,
                         tracing=True)
        try:
            stats = ExecStats()
            engine.execute(_count_query(store), stats=stats)
            assert stats.route == "scatter"
            pooled = stats.trace.root.find("pooled")
            assert pooled is not None, "pooled dispatch span must exist"
            assert pooled.attrs["mode"] == "scatter"
            assert pooled.attrs["workers"] == workers

            grafted = [c for c in pooled.children if c.name == "worker"]
            n = len(stats.partition_times)
            assert n >= 2, "the scatter must actually have fanned out"
            assert len(grafted) == n, (
                "every partition must contribute a grafted worker subtree"
            )
            assert sorted(s.attrs["partition"] for s in grafted) == list(
                range(n)
            )
            assert [p for p, _, _ in stats.partition_times] == list(range(n))
            for span in grafted:
                assert span.attrs["worker_pid"] > 0
                assert span.attrs["worker_pid"] != os.getpid()
                assert span.attrs["mode"] == "partial"
                assert span.attrs["snapshot"] in ("attached", "cached")
                # Real operator spans, not a stub: the subtree has depth.
                assert span.children, "worker subtree must carry op spans"
                names = [s.name for _, s in span.walk()]
                assert any("execute" in n or n[0].isupper() for n in names)
                assert span.duration >= 0.0
        finally:
            engine.close()

    def test_workers_1_runs_in_process_with_no_pooled_span(self):
        store, _ = generate_store(5)
        engine = GraphEngineService(
            store, EngineConfig.ges(workers=1, tracing=True)
        )
        stats = ExecStats()
        engine.execute(_count_query(store), stats=stats)
        assert stats.route == "in-process"
        assert stats.trace.root.find("pooled") is None
        assert stats.partition_times == []

    def test_explain_analyze_renders_partition_fanout(self):
        store, _ = generate_store(5)
        engine = _pooled(store)
        try:
            text = engine.explain_analyze(_count_query(store))
            assert "pooled" in text
            assert "mode=scatter" in text
            assert "worker_pid=" in text
            assert "partition=0" in text and "partition=1" in text
            assert "stub" not in text
        finally:
            engine.close()

    def test_whole_query_offload_grafts_one_worker_subtree(self):
        store, _ = generate_store(5)
        # scatter_min_rows left at its large default: the source is too
        # small to split, so the coordinator offloads the whole query.
        engine = GraphEngineService(
            store, EngineConfig.ges(workers=2, tracing=True)
        )
        try:
            stats = ExecStats()
            engine.execute(_count_query(store), stats=stats)
            assert stats.route == "whole"
            pooled = stats.trace.root.find("pooled")
            assert pooled is not None
            assert pooled.attrs["mode"] == "whole"
            grafted = [c for c in pooled.children if c.name == "worker"]
            assert len(grafted) == 1
            assert grafted[0].attrs["mode"] == "whole"
            assert grafted[0].attrs["worker_pid"] > 0
            assert grafted[0].children
        finally:
            engine.close()

    def test_untraced_pooled_query_ships_no_spans(self):
        store, _ = generate_store(5)
        engine = _pooled(store, tracing=False)
        try:
            stats = ExecStats()
            engine.execute(_count_query(store), stats=stats)
            assert stats.trace is None
            assert stats.route == "scatter"  # timings still recorded
            assert stats.partition_times
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# Counter-delta shipping: exactly once, never from a crashed task


@pytest.mark.parallel
class TestMetricDeltaIdempotence:
    def test_kill9_mid_task_cannot_double_count(self):
        store, _ = generate_store(3)
        engine = _pooled(store)
        query = _count_query(store)
        try:
            stats = ExecStats()
            engine.execute(query, stats=stats)
            partitions = len(stats.partition_times)
            assert partitions >= 1
            after_first = _counter_value(
                "ges_worker_tasks_total", mode="partial"
            )
            assert after_first >= partitions

            # Hold a task open in a worker, then kill -9 every worker.
            pool = engine.parallel.pool
            failures: list[BaseException] = []

            def run_blocked():
                try:
                    pool.run(
                        SnapshotTask({"op": "block", "seconds": 30.0}),
                        timeout_s=30.0,
                    )
                except BaseException as exc:  # noqa: BLE001
                    failures.append(exc)

            before_tasks = pool.tasks_total
            thread = threading.Thread(target=run_blocked)
            thread.start()
            deadline = time.monotonic() + 5.0
            while (
                pool.tasks_total == before_tasks
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            time.sleep(0.1)  # let the send land in the worker
            for pid in pool.worker_pids():
                os.kill(pid, signal.SIGKILL)
            thread.join(timeout=15.0)
            assert not thread.is_alive()
            assert len(failures) == 1
            assert isinstance(failures[0], WorkerCrash)

            # The crashed task never replied, so it shipped no deltas.
            assert (
                _counter_value("ges_worker_tasks_total", mode="partial")
                == after_first
            )

            # The respawned workers' registries restart from zero; the
            # per-task snapshot/delta discipline still merges exactly one
            # increment per partition — no double count, no lost count.
            assert pool.ping(timeout_s=15.0) == 2
            stats2 = ExecStats()
            engine.execute(query, stats=stats2)
            assert (
                _counter_value("ges_worker_tasks_total", mode="partial")
                == after_first + len(stats2.partition_times)
            )
            assert _counter_value("ges_pool_respawns_total", pool="2") >= 1
            assert _counter_value("ges_pool_crashes_total", pool="2") >= 1
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# Event log: worker events folded in, deterministic under seeded chaos


class TestEventLog:
    def test_worker_events_are_folded_with_worker_pid(self):
        EVENTS.clear()
        store, _ = generate_store(3)
        engine = _pooled(store)
        try:
            engine.execute(_count_query(store))
        finally:
            engine.close()
        events = EVENTS.tail()
        kinds = {e.kind for e in events}
        # Coordinator-side lifecycle (worker_spawn fires once per shared
        # pool, possibly before this test's clear — not asserted here).
        assert "snapshot_export" in kinds
        attaches = [e for e in events if e.kind == "snapshot_attach"]
        assert attaches, "workers must report the snapshot attach"
        for event in attaches:
            assert event.attrs["worker_pid"] > 0
            assert event.attrs["pid"] == event.attrs["worker_pid"]

    def test_event_sequence_is_deterministic_under_seeded_chaos(self):
        from repro.parallel.pool import shutdown_shared_pools
        from repro.testkit.chaos import ChaosConfig, run_chaos

        config = ChaosConfig(
            seed=11,
            iterations=16,
            graphs=1,
            fault_probability=0.3,
            stress_runs=0,  # threads would race the total order
            oracle_checks=2,
        )
        sequences = []
        for _ in range(2):
            # Fresh workers: a warm pool's snapshot-cache state (attach /
            # detach events) is per-process history, not campaign behavior.
            shutdown_shared_pools()
            EVENTS.clear()
            report = run_chaos(config)
            assert report.passed, report.summary()
            sequences.append([e.identity() for e in EVENTS.tail()])
        first, second = sequences
        assert first, "seeded chaos must emit lifecycle events"
        assert any(kind == "fault_fired" for kind, _ in first)
        assert first == second

    def test_identity_strips_process_identity_attrs(self):
        EVENTS.clear()
        event = EVENTS.emit(
            "worker_respawn", old_pid=123, new_pid=456, pool=2
        )
        kind, attrs = event.identity()
        assert kind == "worker_respawn"
        assert attrs == (("pool", 2),)


# ---------------------------------------------------------------------------
# Flight recorder: route + per-partition timings survive into the ring


class TestFlightRecorderRoute:
    def test_pooled_route_and_partition_times_recorded(self):
        store, _ = generate_store(4)
        engine = _pooled(store)
        try:
            engine.execute(_count_query(store))
            record = engine.flight.recent[-1]
            snapshot = record.stats_snapshot
            assert snapshot["route"] == "scatter"
            assert len(snapshot["partition_times"]) >= 2
            for index, seconds, rows in snapshot["partition_times"]:
                assert seconds >= 0.0 and rows >= 0
            dump = render_flight_dump(engine.flight.dump())
            assert "[scatter]" in dump
            assert "partition[0]" in dump and "partition[1]" in dump
        finally:
            engine.close()

    def test_in_process_route_recorded(self):
        store, _ = generate_store(4)
        engine = GraphEngineService(store, EngineConfig.ges())
        engine.execute(_count_query(store))
        snapshot = engine.flight.recent[-1].stats_snapshot
        assert snapshot["route"] == "in-process"
        assert snapshot["partition_times"] == []


# ---------------------------------------------------------------------------
# Pool-health telemetry: gauges in the registry and the export surface


class TestPoolTelemetry:
    def test_metrics_export_contains_pool_health_series(self):
        store, _ = generate_store(3)
        engine = _pooled(store)
        try:
            engine.execute(_count_query(store))
            text = prometheus_text(REGISTRY)
            for name in (
                "ges_pool_tasks_total",
                "ges_pool_respawns_total",
                "ges_worker_rss_bytes",
                "ges_worker_tasks",
                "ges_shm_segment_bytes",
                "ges_shm_segments",
                "ges_shm_exports_total",
            ):
                assert name in text, f"{name} missing from the export"
            # Live workers report a real resident set.
            for pid in engine.parallel.pool.worker_pids():
                assert pid > 0
            rss = REGISTRY.get("ges_worker_rss_bytes")
            assert any(
                inst.value > 0 for _, inst in rss.instruments.items()
            ), "at least one live worker must report RSS"
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# `repro top`: one frame is a pure read; the CLI smoke mode exits 0


class TestTop:
    def test_frame_renders_pool_shm_and_event_sections(self):
        store, _ = generate_store(3)
        engine = _pooled(store)
        try:
            engine.execute(_count_query(store))
            frame = render_top_frame()
            assert "ges top" in frame
            assert "pool[2w]" in frame
            assert "segments=" in frame
            assert "served=" in frame
            assert "recent events" in frame
        finally:
            engine.close()

    def test_run_top_renders_frames_and_reraises_work_failure(self):
        out = io.StringIO()
        run_top(lambda: time.sleep(0.05), interval_s=0.01, out=out)
        assert "ges top" in out.getvalue()

        def boom():
            raise ValueError("workload failed")

        with pytest.raises(ValueError, match="workload failed"):
            run_top(boom, interval_s=0.01, out=io.StringIO())

    @pytest.mark.parallel
    def test_cli_top_once_exits_zero(self, capsys):
        assert (
            cli_main(
                [
                    "top",
                    "--scale", "SF1",
                    "--ops", "10",
                    "--workers", "2",
                    "--once",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ges top" in out
        assert "pool[2w]" in out
