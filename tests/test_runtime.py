"""Tests for the Runtime: sequential/parallel execution and the
discrete-event service simulation."""

import numpy as np
import pytest

from repro.exec.runtime import (
    run_inter_query,
    run_sequential,
    simulate_service,
)


class TestTaskRunners:
    def test_sequential_order(self):
        log = []
        run_sequential([lambda i=i: log.append(i) for i in range(5)])
        assert log == [0, 1, 2, 3, 4]

    def test_sequential_returns_results(self):
        assert run_sequential([lambda: 1, lambda: 2]) == [1, 2]

    def test_inter_query_results_in_submit_order(self):
        out = run_inter_query([lambda i=i: i * i for i in range(10)], workers=4)
        assert out == [i * i for i in range(10)]

    def test_single_worker_falls_back_to_sequential(self):
        assert run_inter_query([lambda: "x"], workers=1) == ["x"]


class TestSimulation:
    def test_single_worker_serializes(self):
        sim = simulate_service(
            np.asarray([0.0, 0.0, 0.0]), np.asarray([1.0, 1.0, 1.0]), workers=1
        )
        assert sim.completion_times.tolist() == [1.0, 2.0, 3.0]

    def test_two_workers_halve_makespan(self):
        one = simulate_service(np.zeros(4), np.ones(4), workers=1)
        two = simulate_service(np.zeros(4), np.ones(4), workers=2)
        assert two.makespan == one.makespan / 2

    def test_latency_includes_queueing(self):
        sim = simulate_service(np.asarray([0.0, 0.0]), np.asarray([2.0, 2.0]), 1)
        assert sim.latencies.tolist() == [2.0, 4.0]

    def test_idle_worker_serves_immediately(self):
        sim = simulate_service(np.asarray([0.0, 10.0]), np.asarray([1.0, 1.0]), 1)
        assert sim.completion_times.tolist() == [1.0, 11.0]

    def test_unsorted_arrivals_served_fifo(self):
        arrivals = np.asarray([5.0, 0.0])
        services = np.asarray([1.0, 1.0])
        sim = simulate_service(arrivals, services, 1)
        assert sim.completion_times.tolist() == [6.0, 1.0]

    def test_throughput(self):
        sim = simulate_service(np.zeros(10), np.full(10, 0.5), workers=5)
        assert sim.throughput == pytest.approx(10 / sim.makespan)

    def test_more_workers_never_hurt(self):
        rng = np.random.default_rng(0)
        arrivals = np.sort(rng.uniform(0, 10, 50))
        services = rng.uniform(0.01, 1.0, 50)
        makespans = [
            simulate_service(arrivals, services, w).makespan for w in (1, 2, 4, 8)
        ]
        assert all(a >= b for a, b in zip(makespans, makespans[1:]))

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            simulate_service(np.zeros(1), np.zeros(1), 0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            simulate_service(np.zeros(2), np.zeros(1), 1)

    def test_empty_stream(self):
        sim = simulate_service(np.empty(0), np.empty(0), 1)
        assert sim.throughput == 0.0
