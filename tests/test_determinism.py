"""Seed-determinism regressions: one seed, one byte stream, forever.

Both generators (the LDBC datagen and the testkit's graph/query/update
generators) must emit byte-identical output for one seed — across repeated
in-process runs *and* across process restarts, because a corpus entry or a
reported fuzz seed is only a repro if regeneration is exact.  The
cross-process checks run a fresh interpreter via ``subprocess`` and
compare digests, which would catch any accidental dependence on hash
randomization, set iteration order, or process-local state.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import subprocess
import sys
from pathlib import Path

from repro.ldbc import generate
from repro.testkit import (
    QueryGenerator,
    UpdateGenerator,
    fuzz_schema,
    random_graph_spec,
    spec_digest,
)
from repro.testkit.graphgen import PROFILES

_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _testkit_digest(seed: int) -> str:
    """Digest of a spec plus the first queries/updates drawn over it."""
    schema = fuzz_schema()
    spec = random_graph_spec(
        random.Random(f"{seed}:graph:0"), schema, PROFILES["quick"], seed=seed
    )
    qgen = QueryGenerator(schema, random.Random(f"{seed}:queries:0"))
    ugen = UpdateGenerator(
        schema, random.Random(f"{seed}:updates:0"), spec, PROFILES["quick"]
    )
    payload = {
        "spec": spec_digest(spec),
        "queries": [qgen.query(spec).to_json() for _ in range(10)],
        "cypher": [qgen.cypher_query(spec).to_json() for _ in range(5)],
        "updates": [ugen.batch().to_json() for _ in range(3)],
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def _datagen_digest(seed: int) -> str:
    """Digest over the SNB store's person names and global counts."""
    dataset = generate("SF1", seed=seed)
    names = dataset.store.table("Person").column("firstName").view()
    payload = {
        "firstNames": [str(v) for v in names],
        "vertices": dataset.store.vertex_count,
        "edges": dataset.store.edge_count,
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def _digest_in_subprocess(fn_name: str, seed: int) -> str:
    """Recompute one digest in a brand-new interpreter."""
    script = (
        "import sys, importlib.util\n"
        f"spec = importlib.util.spec_from_file_location('det', {str(Path(__file__).resolve())!r})\n"
        "mod = importlib.util.module_from_spec(spec)\n"
        "spec.loader.exec_module(mod)\n"
        f"print(getattr(mod, {fn_name!r})({seed}))\n"
    )
    env = dict(os.environ, PYTHONPATH=_SRC, PYTHONHASHSEED="random")
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return out.stdout.strip()


class TestInProcessDeterminism:
    def test_testkit_stream_is_repeatable(self):
        assert _testkit_digest(0) == _testkit_digest(0)

    def test_testkit_seed_changes_stream(self):
        assert _testkit_digest(0) != _testkit_digest(1)

    def test_spec_digest_stable(self):
        schema = fuzz_schema()
        specs = [
            random_graph_spec(random.Random("7:g"), schema, PROFILES["quick"], seed=7)
            for _ in range(2)
        ]
        assert spec_digest(specs[0]) == spec_digest(specs[1])

    def test_datagen_is_repeatable(self):
        assert _datagen_digest(42) == _datagen_digest(42)


class TestCrossProcessDeterminism:
    def test_testkit_digest_survives_restart(self):
        assert _digest_in_subprocess("_testkit_digest", 0) == _testkit_digest(0)

    def test_datagen_digest_survives_restart(self):
        assert _digest_in_subprocess("_datagen_digest", 42) == _datagen_digest(42)
