"""Seed-determinism regressions: one seed, one byte stream, forever.

Both generators (the LDBC datagen and the testkit's graph/query/update
generators) must emit byte-identical output for one seed — across repeated
in-process runs *and* across process restarts, because a corpus entry or a
reported fuzz seed is only a repro if regeneration is exact.  The
cross-process checks run a fresh interpreter via ``subprocess`` and
compare digests, which would catch any accidental dependence on hash
randomization, set iteration order, or process-local state.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import subprocess
import sys
from pathlib import Path

from repro.ldbc import generate
from repro.testkit import (
    QueryGenerator,
    UpdateGenerator,
    fuzz_schema,
    random_graph_spec,
    spec_digest,
)
from repro.testkit.graphgen import PROFILES

_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _testkit_digest(seed: int) -> str:
    """Digest of a spec plus the first queries/updates drawn over it."""
    schema = fuzz_schema()
    spec = random_graph_spec(
        random.Random(f"{seed}:graph:0"), schema, PROFILES["quick"], seed=seed
    )
    qgen = QueryGenerator(schema, random.Random(f"{seed}:queries:0"))
    ugen = UpdateGenerator(
        schema, random.Random(f"{seed}:updates:0"), spec, PROFILES["quick"]
    )
    payload = {
        "spec": spec_digest(spec),
        "queries": [qgen.query(spec).to_json() for _ in range(10)],
        "cypher": [qgen.cypher_query(spec).to_json() for _ in range(5)],
        "updates": [ugen.batch().to_json() for _ in range(3)],
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def _datagen_digest(seed: int) -> str:
    """Digest over the SNB store's person names and global counts."""
    dataset = generate("SF1", seed=seed)
    names = dataset.store.table("Person").column("firstName").view()
    payload = {
        "firstNames": [str(v) for v in names],
        "vertices": dataset.store.vertex_count,
        "edges": dataset.store.edge_count,
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def _digest_in_subprocess(fn_name: str, seed: int) -> str:
    """Recompute one digest in a brand-new interpreter."""
    script = (
        "import sys, importlib.util\n"
        f"spec = importlib.util.spec_from_file_location('det', {str(Path(__file__).resolve())!r})\n"
        "mod = importlib.util.module_from_spec(spec)\n"
        "spec.loader.exec_module(mod)\n"
        f"print(getattr(mod, {fn_name!r})({seed}))\n"
    )
    env = dict(os.environ, PYTHONPATH=_SRC, PYTHONHASHSEED="random")
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return out.stdout.strip()


class TestInProcessDeterminism:
    def test_testkit_stream_is_repeatable(self):
        assert _testkit_digest(0) == _testkit_digest(0)

    def test_testkit_seed_changes_stream(self):
        assert _testkit_digest(0) != _testkit_digest(1)

    def test_spec_digest_stable(self):
        schema = fuzz_schema()
        specs = [
            random_graph_spec(random.Random("7:g"), schema, PROFILES["quick"], seed=7)
            for _ in range(2)
        ]
        assert spec_digest(specs[0]) == spec_digest(specs[1])

    def test_datagen_is_repeatable(self):
        assert _datagen_digest(42) == _datagen_digest(42)


class TestCrossProcessDeterminism:
    def test_testkit_digest_survives_restart(self):
        assert _digest_in_subprocess("_testkit_digest", 0) == _testkit_digest(0)

    def test_datagen_digest_survives_restart(self):
        assert _digest_in_subprocess("_datagen_digest", 42) == _datagen_digest(42)


# ---------------------------------------------------------------------------
# Pooled execution: byte-identical results regardless of parallelism shape
# ---------------------------------------------------------------------------


class TestPooledByteIdentity:
    """Range-partitioned scatter-gather must not leak its shape into
    results: worker count, partition count, and merge arithmetic may not
    change a single byte relative to in-process execution.  ``repr`` of
    the row list is the comparison — value *types* count, not just
    equality."""

    #: One query per scatter regime: plain prefix, filtered expand,
    #: combinable aggregate pushdown (count/min/max), order-by-limit and
    #: bare-limit pushdown, distinct pushdown, and a non-combinable
    #: aggregate (avg) that forces the coordinator re-run path.
    QUERIES = [
        "MATCH (p:Person) RETURN p.id, p.name, p.age",
        "MATCH (p:Person)-[:KNOWS]->(f:Person) WHERE f.age > 20 "
        "RETURN p.id, f.name",
        "MATCH (p:Person) RETURN p.active, count(p.id)",
        "MATCH (p:Person)-[:KNOWS]->(f:Person) "
        "RETURN p.active, min(f.age), max(f.score)",
        "MATCH (p:Person) RETURN p.age, p.id ORDER BY p.age, p.id LIMIT 5",
        "MATCH (p:Person) RETURN p.name LIMIT 7",
        "MATCH (p:Person) RETURN DISTINCT p.active",
        "MATCH (p:Person) RETURN p.active, avg(p.age)",
    ]

    #: (workers, partitions) shapes; (1, 0) is the in-process reference.
    SHAPES = [(1, 0), (2, 2), (2, 3), (2, 5), (4, 4), (4, 7)]

    def _run_all(self, store, workers: int, partitions: int) -> list[str]:
        from repro.engine.config import EngineConfig
        from repro.engine.service import GraphEngineService

        engine = GraphEngineService(
            store,
            EngineConfig.ges(
                workers=workers, partitions=partitions, scatter_min_rows=1
            ),
        )
        try:
            return [repr(engine.execute(q).rows) for q in self.QUERIES]
        finally:
            engine.close()

    def test_pooled_rows_byte_identical_across_shapes(self):
        from repro.testkit.graphgen import generate_store

        store, _ = generate_store(7)
        reference = self._run_all(store, *self.SHAPES[0])
        for workers, partitions in self.SHAPES[1:]:
            got = self._run_all(store, workers, partitions)
            for query, want, have in zip(self.QUERIES, reference, got):
                assert have == want, (
                    f"workers={workers} partitions={partitions} changed "
                    f"bytes of {query!r}:\n  {have}\n  != {want}"
                )

    def test_hash_partitioning_preserves_bags(self):
        """Hash partitioning gives up output order (and is refused for
        order-sensitive tails) but must preserve the result *bag*."""
        from repro.engine.config import EngineConfig
        from repro.engine.service import GraphEngineService
        from repro.ldbc.validation import rows_bag
        from repro.testkit.graphgen import generate_store

        store, _ = generate_store(7)
        baseline = GraphEngineService(store, EngineConfig.ges())
        hashed = GraphEngineService(
            store,
            EngineConfig.ges(
                workers=2,
                partitions=3,
                partition_kind="hash",
                scatter_min_rows=1,
            ),
        )
        try:
            for query in self.QUERIES:
                want = baseline.execute(query)
                have = hashed.execute(query)
                if "ORDER BY" in query or "LIMIT" in query:
                    continue  # order-sensitive: hash analysis refuses these
                assert rows_bag(have.rows) == rows_bag(want.rows), query
        finally:
            hashed.close()
