"""Tests for the 29 LDBC workload queries: registry completeness, semantic
spot checks, and agreement across all four engines on SF1."""

import numpy as np
import pytest

from repro.baselines import VolcanoEngine
from repro.engine import open_all_variants
from repro.exec.base import ExecStats
from repro.ldbc import REGISTRY, ParameterGenerator, queries_of
from repro.ldbc.datagen import SIM_END, SIM_START, generate


ALL_IC = [f"IC{i}" for i in range(1, 15)]
ALL_IS = [f"IS{i}" for i in range(1, 8)]
ALL_IU = [f"IU{i}" for i in range(1, 9)]


class TestRegistry:
    def test_all_queries_registered(self):
        assert set(REGISTRY) == set(ALL_IC + ALL_IS + ALL_IU)

    def test_categories(self):
        assert len(queries_of("IC")) == 14
        assert len(queries_of("IS")) == 7
        assert len(queries_of("IU")) == 8

    def test_descriptions_present(self):
        assert all(q.description for q in REGISTRY.values())


@pytest.fixture(scope="module")
def engines(sf1_dataset):
    out = open_all_variants(sf1_dataset.store)
    out["Volcano"] = VolcanoEngine(sf1_dataset.store)
    return out


@pytest.fixture(scope="module")
def param_gen(sf1_dataset):
    return ParameterGenerator(sf1_dataset, seed=7)


@pytest.mark.parametrize("name", ALL_IC + ALL_IS)
def test_read_query_agrees_across_engines(name, engines, param_gen):
    params = param_gen.params_for(name)
    results = {
        variant: REGISTRY[name].fn(engine, params, ExecStats())
        for variant, engine in engines.items()
    }
    baseline = results["GES"]
    for variant, rows in results.items():
        assert rows == baseline, f"{variant} disagrees on {name}"


class TestSemantics:
    """Spot checks of query meaning, independent of the engines agreeing."""

    def test_ic1_returns_only_matching_first_name(self, sf1_dataset, engines):
        gen = ParameterGenerator(sf1_dataset, seed=11)
        params = gen.params_for("IC1")
        rows = REGISTRY["IC1"].fn(engines["GES_f*"], params, ExecStats())
        table = sf1_dataset.store.table("Person")
        for _, last_name, friend_id, _, _ in [(r[0], r[1], r[2], r[3], r[4]) for r in rows]:
            row = table.row_for_key(friend_id)
            assert table.get_property(row, "firstName") == params["firstName"]

    def test_ic1_distances_ascending(self, engines, param_gen):
        params = param_gen.params_for("IC1")
        rows = REGISTRY["IC1"].fn(engines["GES_f*"], params, ExecStats())
        distances = [r[0] for r in rows]
        assert distances == sorted(distances)

    def test_ic2_dates_bounded_and_sorted(self, engines, param_gen):
        params = param_gen.params_for("IC2")
        rows = REGISTRY["IC2"].fn(engines["GES_f*"], params, ExecStats())
        dates = [r[5] for r in rows]
        assert all(d <= params["maxDate"] for d in dates)
        assert dates == sorted(dates, reverse=True)
        assert len(rows) <= 20

    def test_ic3_counts_positive_for_both_countries(self, engines, param_gen):
        for _ in range(5):
            params = param_gen.params_for("IC3")
            rows = REGISTRY["IC3"].fn(engines["GES_f*"], params, ExecStats())
            for _, x_count, y_count, total in rows:
                assert x_count > 0 and y_count > 0
                assert total == x_count + y_count

    def test_ic5_counts_descending(self, engines, param_gen):
        params = param_gen.params_for("IC5")
        rows = REGISTRY["IC5"].fn(engines["GES_f*"], params, ExecStats())
        counts = [r[2] for r in rows]
        assert counts == sorted(counts, reverse=True)

    def test_ic6_excludes_query_tag(self, engines, param_gen):
        for _ in range(5):
            params = param_gen.params_for("IC6")
            rows = REGISTRY["IC6"].fn(engines["GES_f*"], params, ExecStats())
            assert all(r[0] != params["tagName"] for r in rows)

    def test_ic7_is_new_flag(self, sf1_dataset, engines, param_gen):
        from repro.storage.catalog import AdjacencyKey, Direction

        params = param_gen.params_for("IC7")
        rows = REGISTRY["IC7"].fn(engines["GES_f*"], params, ExecStats())
        view = sf1_dataset.store.read_view()
        person_row = view.vertex_by_key("Person", params["personId"])
        knows = AdjacencyKey("Person", "KNOWS", "Person", Direction.OUT)
        friend_ids = {
            view.vertex_key("Person", int(r))
            for r in view.neighbors(knows, person_row)
        }
        for liker_id, _, _, _, is_new in rows:
            assert is_new == (liker_id not in friend_ids)

    def test_ic9_respects_max_date(self, engines, param_gen):
        params = param_gen.params_for("IC9")
        rows = REGISTRY["IC9"].fn(engines["GES_f*"], params, ExecStats())
        assert all(r[5] < params["maxDate"] for r in rows)
        assert len(rows) <= 20

    def test_ic10_scores_descending(self, engines, param_gen):
        params = param_gen.params_for("IC10")
        rows = REGISTRY["IC10"].fn(engines["GES_f*"], params, ExecStats())
        scores = [r[2] for r in rows]
        assert scores == sorted(scores, reverse=True)

    def test_ic13_symmetric(self, engines, param_gen):
        params = param_gen.params_for("IC13")
        forward = REGISTRY["IC13"].fn(engines["GES_f*"], params, ExecStats())
        backward = REGISTRY["IC13"].fn(
            engines["GES_f*"],
            {"person1Id": params["person2Id"], "person2Id": params["person1Id"]},
            ExecStats(),
        )
        assert forward == backward

    def test_ic14_paths_start_and_end_correctly(self, engines, param_gen):
        params = param_gen.params_for("IC14")
        rows = REGISTRY["IC14"].fn(engines["GES_f*"], params, ExecStats())
        for path, _ in rows:
            ids = [int(x) for x in path.split(",")]
            assert ids[0] == params["person1Id"]
            assert ids[-1] == params["person2Id"]

    def test_is1_profile_fields(self, sf1_dataset, engines, param_gen):
        params = param_gen.params_for("IS1")
        rows = REGISTRY["IS1"].fn(engines["GES_f*"], params, ExecStats())
        assert len(rows) == 1
        table = sf1_dataset.store.table("Person")
        row = table.row_for_key(params["personId"])
        assert rows[0][0] == table.get_property(row, "firstName")

    def test_is3_sorted_by_friendship_date(self, engines, param_gen):
        params = param_gen.params_for("IS3")
        rows = REGISTRY["IS3"].fn(engines["GES_f*"], params, ExecStats())
        dates = [r[3] for r in rows]
        assert dates == sorted(dates, reverse=True)


class TestUpdates:
    """IU queries run against a fresh store (they mutate)."""

    @pytest.fixture
    def fresh(self):
        dataset = generate("SF1", seed=42)
        engines = open_all_variants(dataset.store)
        return dataset, engines["GES_f*"], ParameterGenerator(dataset, seed=3)

    def test_iu1_adds_person(self, fresh):
        dataset, engine, gen = fresh
        params = gen.params_for("IU1")
        REGISTRY["IU1"].fn(engine, params, ExecStats())
        assert engine.read_view().vertex_by_key("Person", params["personId"]) is not None

    def test_iu2_like_visible_in_ic7(self, fresh):
        dataset, engine, gen = fresh
        params = gen.params_for("IU2")
        REGISTRY["IU2"].fn(engine, params, ExecStats())
        from repro.storage.catalog import AdjacencyKey, Direction

        view = engine.read_view()
        person_row = view.vertex_by_key("Person", params["personId"])
        likes = AdjacencyKey("Person", "LIKES", "Message", Direction.OUT)
        message_row = view.vertex_by_key("Message", params["messageId"])
        assert message_row in view.neighbors(likes, person_row).tolist()

    def test_iu6_post_queryable(self, fresh):
        dataset, engine, gen = fresh
        params = gen.params_for("IU6")
        REGISTRY["IU6"].fn(engine, params, ExecStats())
        rows = REGISTRY["IS4"].fn(engine, {"messageId": params["postId"]}, ExecStats())
        assert rows == [(params["creationDate"], params["content"])]

    def test_iu7_comment_linked_to_parent(self, fresh):
        dataset, engine, gen = fresh
        params = gen.params_for("IU7")
        REGISTRY["IU7"].fn(engine, params, ExecStats())
        from repro.storage.catalog import AdjacencyKey, Direction

        view = engine.read_view()
        comment = view.vertex_by_key("Message", params["commentId"])
        reply = AdjacencyKey("Message", "REPLY_OF", "Message", Direction.OUT)
        parent = view.vertex_by_key("Message", params["replyToId"])
        assert view.neighbors(reply, comment).tolist() == [parent]

    def test_iu8_friendship_symmetric(self, fresh):
        dataset, engine, gen = fresh
        params = gen.params_for("IU8")
        REGISTRY["IU8"].fn(engine, params, ExecStats())
        from repro.storage.catalog import AdjacencyKey, Direction

        view = engine.read_view()
        a = view.vertex_by_key("Person", params["person1Id"])
        b = view.vertex_by_key("Person", params["person2Id"])
        knows = AdjacencyKey("Person", "KNOWS", "Person", Direction.OUT)
        assert b in view.neighbors(knows, a).tolist()
        assert a in view.neighbors(knows, b).tolist()

    def test_updates_preserve_read_query_agreement(self, fresh):
        """After a batch of updates, all engines still agree on reads."""
        dataset, engine, gen = fresh
        for name in ALL_IU:
            REGISTRY[name].fn(engine, gen.params_for(name), ExecStats())
        engines = open_all_variants(dataset.store)
        for name in ("IC2", "IC9", "IS2", "IS3"):
            params = gen.params_for(name)
            results = {
                v: REGISTRY[name].fn(e, params, ExecStats()) for v, e in engines.items()
            }
            baseline = results["GES"]
            assert all(r == baseline for r in results.values()), name
