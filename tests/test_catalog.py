"""Tests for the schema catalog and adjacency keys."""

import pytest

from repro.errors import SchemaError
from repro.storage.catalog import (
    AdjacencyKey,
    Direction,
    EdgeLabelDef,
    GraphSchema,
    PropertyDef,
    VertexLabelDef,
)
from repro.types import DataType


def person() -> VertexLabelDef:
    return VertexLabelDef(
        "Person", [PropertyDef("id", DataType.INT64)], primary_key="id"
    )


class TestDirection:
    def test_reverse_out(self):
        assert Direction.OUT.reverse() is Direction.IN

    def test_reverse_in(self):
        assert Direction.IN.reverse() is Direction.OUT


class TestAdjacencyKey:
    def test_reversed_swaps_endpoints(self):
        key = AdjacencyKey("A", "E", "B", Direction.OUT)
        assert key.reversed() == AdjacencyKey("B", "E", "A", Direction.IN)

    def test_double_reverse_is_identity(self):
        key = AdjacencyKey("A", "E", "B", Direction.OUT)
        assert key.reversed().reversed() == key


class TestVertexLabelDef:
    def test_duplicate_property_rejected(self):
        with pytest.raises(SchemaError):
            VertexLabelDef(
                "X", [PropertyDef("a", DataType.INT64), PropertyDef("a", DataType.INT64)]
            )

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            VertexLabelDef("X", [PropertyDef("a", DataType.INT64)], primary_key="b")

    def test_primary_key_must_be_integer(self):
        with pytest.raises(SchemaError):
            VertexLabelDef("X", [PropertyDef("a", DataType.STRING)], primary_key="a")

    def test_property_lookup(self):
        label = person()
        assert label.property("id").dtype is DataType.INT64

    def test_has_property(self):
        assert person().has_property("id")
        assert not person().has_property("nope")


class TestGraphSchema:
    def test_duplicate_vertex_label_rejected(self):
        schema = GraphSchema()
        schema.add_vertex_label(person())
        with pytest.raises(SchemaError):
            schema.add_vertex_label(person())

    def test_edge_with_unknown_endpoint_rejected(self):
        schema = GraphSchema()
        schema.add_vertex_label(person())
        with pytest.raises(SchemaError):
            schema.add_edge_label(EdgeLabelDef("E", "Person", "Ghost"))

    def test_duplicate_edge_definition_rejected(self):
        schema = GraphSchema()
        schema.add_vertex_label(person())
        schema.add_edge_label(EdgeLabelDef("E", "Person", "Person"))
        with pytest.raises(SchemaError):
            schema.add_edge_label(EdgeLabelDef("E", "Person", "Person"))

    def test_same_edge_name_different_endpoints_allowed(self):
        schema = GraphSchema()
        schema.add_vertex_label(person())
        schema.add_vertex_label(VertexLabelDef("Tag", [PropertyDef("id", DataType.INT64)]))
        schema.add_edge_label(EdgeLabelDef("HAS", "Person", "Tag"))
        schema.add_edge_label(EdgeLabelDef("HAS", "Tag", "Tag"))
        assert len(schema.edge_definitions("HAS")) == 2

    def test_unknown_vertex_label_raises(self):
        with pytest.raises(SchemaError):
            GraphSchema().vertex_label("Ghost")

    def test_vertex_labels_listing(self):
        schema = GraphSchema()
        schema.add_vertex_label(person())
        assert schema.vertex_labels == ["Person"]


class TestExpandKeys:
    @pytest.fixture
    def schema(self) -> GraphSchema:
        schema = GraphSchema()
        schema.add_vertex_label(person())
        schema.add_vertex_label(
            VertexLabelDef("Message", [PropertyDef("id", DataType.INT64)])
        )
        schema.add_edge_label(EdgeLabelDef("HAS_CREATOR", "Message", "Person"))
        return schema

    def test_out_direction(self, schema):
        keys = schema.expand_keys("HAS_CREATOR", Direction.OUT, "Message")
        assert keys == [AdjacencyKey("Message", "HAS_CREATOR", "Person", Direction.OUT)]

    def test_in_direction(self, schema):
        keys = schema.expand_keys("HAS_CREATOR", Direction.IN, "Person")
        assert keys == [AdjacencyKey("Person", "HAS_CREATOR", "Message", Direction.IN)]

    def test_in_direction_key_src_is_start_label(self, schema):
        (key,) = schema.expand_keys("HAS_CREATOR", Direction.IN, "Person")
        assert key.src_label == "Person"
        assert key.dst_label == "Message"

    def test_no_match_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.expand_keys("HAS_CREATOR", Direction.OUT, "Person")

    def test_to_label_restriction(self, schema):
        keys = schema.expand_keys(
            "HAS_CREATOR", Direction.OUT, "Message", to_label="Person"
        )
        assert len(keys) == 1
