"""Tests for the service resilience layer (PR 5).

Covers the watchdog deadline plumbing across all four executor variants,
the admission controller, bounded retry with deterministic jitter, the
graceful-degradation ladder, seeded fault injection, corrupt-snapshot
handling, driver error accounting, and the chaos campaign itself.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import EngineConfig, GES
from repro.baselines import VolcanoEngine
from repro.errors import (
    AdmissionRejected,
    GesError,
    QueryTimeout,
    StorageError,
    TransientError,
)
from repro.ldbc import BenchmarkDriver, generate
from repro.ldbc.queries import REGISTRY as LDBC_REGISTRY, LdbcQueryDef
from repro.ldbc.validation import rows_bag
from repro.resilience import (
    AdmissionController,
    Deadline,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    current_deadline,
    deadline_scope,
    fault_scope,
    with_fallback,
)
from repro.resilience.retry import RetryStats
from repro.resilience.watchdog import TICK_STRIDE
from repro.storage.graph import VertexRef
from repro.storage.io import load_graph, save_graph, write_manifest
from repro.testkit import ChaosConfig, StressConfig, run_chaos, run_stress

LONG_QUERY = "MATCH (a:Person)-[:KNOWS*1..3]->(b) RETURN id(b)"


# -- watchdog ---------------------------------------------------------------------


class TestDeadline:
    def test_fresh_deadline_not_expired(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired()
        assert deadline.remaining() > 0
        deadline.check()  # must not raise

    def test_expired_deadline_raises_typed(self):
        deadline = Deadline.after(0.0, label="IC5")
        assert deadline.expired()
        with pytest.raises(QueryTimeout, match="IC5"):
            deadline.check()

    def test_timeout_is_a_ges_error(self):
        with pytest.raises(GesError):
            Deadline.after(0.0).check()

    def test_tick_checks_within_one_stride(self):
        deadline = Deadline.after(0.0)
        with pytest.raises(QueryTimeout):
            for _ in range(TICK_STRIDE + 1):
                deadline.tick()

    def test_no_ambient_deadline_by_default(self):
        assert current_deadline() is None

    def test_scope_installs_and_restores(self):
        deadline = Deadline.after(60.0)
        with deadline_scope(deadline) as active:
            assert active is deadline
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_nested_scope_keeps_sooner_expiry(self):
        outer = Deadline.after(0.001)
        inner = Deadline.after(3600.0)
        with deadline_scope(outer):
            with deadline_scope(inner) as active:
                # The outer deadline expires first and must stay in force.
                assert active.expires_at == outer.expires_at
            assert current_deadline() is outer

    def test_none_scope_leaves_outer_in_force(self):
        outer = Deadline.after(60.0)
        with deadline_scope(outer):
            with deadline_scope(None) as active:
                assert active is outer


# -- fault injection --------------------------------------------------------------


class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="site"):
            FaultRule(site="nonsense.site", probability=0.5)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="locks.acquire", probability=1.5)

    def test_duplicate_sites_rejected(self):
        rules = (
            FaultRule(site="locks.acquire", every_nth=1),
            FaultRule(site="locks.acquire", every_nth=2),
        )
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(rules=rules)

    def test_every_nth_fires_deterministically(self):
        plan = FaultPlan(rules=(FaultRule(site="locks.acquire", every_nth=3),))
        fired = []
        for i in range(9):
            try:
                plan.fire("locks.acquire")
            except TransientError:
                fired.append(i)
        assert fired == [2, 5, 8]

    def test_max_fires_caps_injection(self):
        plan = FaultPlan(
            rules=(FaultRule(site="locks.acquire", every_nth=1, max_fires=2),)
        )
        fired = 0
        for _ in range(10):
            try:
                plan.fire("locks.acquire")
            except TransientError:
                fired += 1
        assert fired == 2

    def test_probability_stream_is_seeded(self):
        def fires(seed):
            plan = FaultPlan(
                rules=(FaultRule(site="locks.acquire", probability=0.5),), seed=seed
            )
            out = []
            for i in range(50):
                try:
                    plan.fire("locks.acquire")
                except TransientError:
                    out.append(i)
            return out

        assert fires(7) == fires(7)
        assert fires(7) != fires(8)

    def test_fault_scope_installs_and_restores(self):
        from repro.resilience import faults

        plan = FaultPlan()
        assert faults.ACTIVE is None
        with fault_scope(plan):
            assert faults.ACTIVE is plan
        assert faults.ACTIVE is None

    def test_unlisted_site_never_fires(self):
        plan = FaultPlan(rules=(FaultRule(site="locks.acquire", every_nth=1),))
        plan.fire("plan_cache.lookup")  # not in the plan: must be a no-op


# -- retry -----------------------------------------------------------------------


class TestRetryPolicy:
    def test_succeeds_after_transients(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("injected")
            return "ok"

        stats = RetryStats()
        policy = RetryPolicy(attempts=5, backoff_ms=0.0)
        assert policy.run(flaky, on_retry=stats.record) == "ok"
        assert calls["n"] == 3
        assert stats.retries == 2

    def test_non_retryable_raises_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            RetryPolicy(attempts=5, backoff_ms=0.0).run(broken)
        assert calls["n"] == 1

    def test_attempts_exhausted_raises_last_error(self):
        def always():
            raise TransientError("forever")

        with pytest.raises(TransientError):
            RetryPolicy(attempts=3, backoff_ms=0.0).run(always)

    def test_expired_deadline_suppresses_retry(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            raise TransientError("injected")

        with pytest.raises(TransientError):
            RetryPolicy(attempts=5, backoff_ms=0.0).run(
                flaky, deadline=Deadline.after(0.0)
            )
        assert calls["n"] == 1

    def test_jitter_is_deterministic_per_seed(self):
        from random import Random

        policy = RetryPolicy(seed=3)
        a = [policy.delay_ms(k, Random("3:retry")) for k in range(1, 5)]
        b = [policy.delay_ms(k, Random("3:retry")) for k in range(1, 5)]
        assert a == b

    def test_backoff_is_capped(self):
        from random import Random

        policy = RetryPolicy(backoff_ms=10.0, multiplier=10.0, max_backoff_ms=25.0)
        assert policy.delay_ms(5, Random(0)) <= 25.0

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


# -- admission -------------------------------------------------------------------


class TestAdmissionController:
    def test_disabled_controller_admits_everything(self):
        ctrl = AdmissionController()
        assert not ctrl.enabled
        with ctrl.admit():
            with ctrl.admit():
                assert ctrl.inflight == 2

    def test_concurrency_limit_rejects_when_queue_off(self):
        ctrl = AdmissionController(max_concurrent=1)
        with ctrl.admit():
            with pytest.raises(AdmissionRejected, match="queue"):
                with ctrl.admit():
                    pass
        assert ctrl.rejected["queue_full"] == 1

    def test_queue_timeout_rejects(self):
        ctrl = AdmissionController(
            max_concurrent=1, queue_limit=4, queue_timeout_ms=5.0
        )
        with ctrl.admit():
            with pytest.raises(AdmissionRejected):
                with ctrl.admit():
                    pass
        assert ctrl.rejected["queue_timeout"] == 1

    def test_queued_query_admitted_on_release(self):
        ctrl = AdmissionController(
            max_concurrent=1, queue_limit=4, queue_timeout_ms=5_000.0
        )
        admitted = threading.Event()

        def contender():
            with ctrl.admit():
                admitted.set()

        with ctrl.admit():
            thread = threading.Thread(target=contender)
            thread.start()
            assert not admitted.wait(0.05)
        thread.join(timeout=5.0)
        assert admitted.is_set()
        assert ctrl.queued == 1

    def test_memory_budget_rejects_immediately(self):
        ctrl = AdmissionController(memory_budget_bytes=1_000)
        with ctrl.admit(estimate_bytes=900):
            with pytest.raises(AdmissionRejected, match="memory"):
                with ctrl.admit(estimate_bytes=900):
                    pass
        assert ctrl.rejected["memory"] == 1

    def test_first_query_always_admitted(self):
        # Even an estimate far above budget is admitted when nothing is
        # inflight — otherwise an over-budget estimate would deadlock.
        ctrl = AdmissionController(memory_budget_bytes=10)
        with ctrl.admit(estimate_bytes=10_000):
            pass
        assert ctrl.admitted == 1

    def test_release_on_error(self):
        ctrl = AdmissionController(max_concurrent=1)
        with pytest.raises(RuntimeError):
            with ctrl.admit():
                raise RuntimeError("query blew up")
        assert ctrl.inflight == 0
        with ctrl.admit():  # slot must have been released
            pass


class TestEngineAdmission:
    def test_engine_rejects_when_full(self, micro_store):
        engine = GES(
            micro_store,
            EngineConfig.ges(max_concurrent_queries=1, admission_queue_limit=0),
        )
        assert engine.admission is not None
        with engine.admission.admit():
            with pytest.raises(AdmissionRejected):
                engine.execute("MATCH (p:Person) RETURN id(p)")
        # Slot freed: the same query is admitted now.
        result = engine.execute("MATCH (p:Person) RETURN id(p)")
        assert len(result.rows) == 5

    def test_describe_reports_resilience_block(self, micro_store):
        engine = GES(
            micro_store,
            EngineConfig.ges_f_star(
                query_timeout_ms=100.0, retry_attempts=3, max_concurrent_queries=2
            ),
        )
        block = engine.describe()["resilience"]
        assert block["query_timeout_ms"] == 100.0
        assert block["retry"]["attempts"] == 3
        assert block["admission"]["max_concurrent"] == 2


# -- timeout matrix: all four variants honor a near-zero deadline ----------------


class TestTimeoutMatrix:
    @pytest.mark.parametrize("variant", ["GES", "GES_f", "GES_f*"])
    def test_near_zero_deadline_cancels(self, micro_store, variant):
        config = {
            "GES": EngineConfig.ges,
            "GES_f": EngineConfig.ges_f,
            "GES_f*": EngineConfig.ges_f_star,
        }[variant]()
        engine = GES(micro_store, config)
        baseline = rows_bag(engine.execute(LONG_QUERY).rows)
        with pytest.raises(QueryTimeout):
            engine.execute(LONG_QUERY, timeout=1e-9)
        # Cancellation left the engine clean: no lock is still held and the
        # identical query still returns the full answer.
        locks = engine.txn_manager.locks
        assert not any(locks.is_locked(key) for key in list(locks._locks))
        assert rows_bag(engine.execute(LONG_QUERY).rows) == baseline

    def test_volcano_honors_timeout(self, micro_store):
        engine = VolcanoEngine(micro_store)
        plan = GES(micro_store).compile(LONG_QUERY)
        baseline = rows_bag(engine.execute(plan).rows)
        with pytest.raises(QueryTimeout):
            engine.execute(plan, timeout=1e-9)
        assert rows_bag(engine.execute(plan).rows) == baseline

    def test_config_level_timeout(self, micro_store):
        engine = GES(micro_store, EngineConfig.ges_f_star(query_timeout_ms=1e-6))
        with pytest.raises(QueryTimeout):
            engine.execute(LONG_QUERY)

    def test_generous_deadline_does_not_fire(self, micro_store):
        engine = GES(micro_store, EngineConfig.ges_f_star())
        result = engine.execute(LONG_QUERY, timeout=60.0)
        assert len(result.rows) > 0

    def test_volcano_respects_ambient_deadline(self, micro_store):
        engine = VolcanoEngine(micro_store)
        plan = GES(micro_store).compile(LONG_QUERY)
        with deadline_scope(Deadline.after(0.0)):
            with pytest.raises(QueryTimeout):
                engine.execute(plan)


# -- degradation ladder ----------------------------------------------------------


class TestWithFallback:
    def test_primary_success_skips_fallback(self):
        assert with_fallback(lambda: "primary", lambda: "fallback") == "primary"

    def test_ges_error_degrades_to_fallback(self):
        degraded = []

        def primary():
            raise TransientError("injected")

        out = with_fallback(primary, lambda: "fallback", on_degrade=degraded.append)
        assert out == "fallback"
        assert len(degraded) == 1

    def test_double_failure_raises_original(self):
        def primary():
            raise TransientError("original")

        def fallback():
            raise StorageError("secondary")

        with pytest.raises(TransientError, match="original"):
            with_fallback(primary, fallback)

    def test_timeout_never_degrades(self):
        def primary():
            raise QueryTimeout("deadline")

        with pytest.raises(QueryTimeout):
            with_fallback(primary, lambda: "fallback")

    def test_raw_exception_not_degraded(self):
        def primary():
            raise ValueError("bug, not an engine error")

        with pytest.raises(ValueError):
            with_fallback(primary, lambda: "fallback")


class TestEngineDegradation:
    def test_factorized_falls_back_to_flat(self, micro_store):
        engine = GES(micro_store, EngineConfig.ges_f_star())
        expected = rows_bag(engine.execute(LONG_QUERY).rows)
        plan = FaultPlan(
            rules=(FaultRule(site="executor.operator", every_nth=1, max_fires=1),)
        )
        from repro.exec.base import ExecStats

        stats = ExecStats()
        with fault_scope(plan):
            result = engine.execute(LONG_QUERY, stats=stats)
        assert rows_bag(result.rows) == expected
        assert stats.degrade_count == 1
        assert plan.total_fired() == 1

    def test_degrade_off_surfaces_typed_error(self, micro_store):
        engine = GES(micro_store, EngineConfig.ges_f_star(degrade=False))
        plan = FaultPlan(
            rules=(FaultRule(site="executor.operator", every_nth=1, max_fires=1),)
        )
        with fault_scope(plan):
            with pytest.raises(TransientError):
                engine.execute(LONG_QUERY)

    def test_plan_cache_fault_degrades_to_uncached_compile(self, micro_store):
        engine = GES(micro_store, EngineConfig.ges_f_star())
        expected = rows_bag(engine.execute(LONG_QUERY).rows)
        plan = FaultPlan(rules=(FaultRule(site="plan_cache.lookup", every_nth=1),))
        with fault_scope(plan):
            result = engine.execute(LONG_QUERY)
        assert rows_bag(result.rows) == expected
        assert plan.total_fired() >= 1

    def test_memory_pool_fault_degrades_to_direct_alloc(self, micro_store):
        # The pool serves copy-on-write pre-images, so the fault is reached
        # through a property-write commit; it must degrade to a direct
        # allocation inside the pool, never fail the transaction.
        engine = GES(micro_store, EngineConfig.ges())
        pool = engine.txn_manager.pool
        before = pool.direct_allocs
        plan = FaultPlan(rules=(FaultRule(site="memory_pool.acquire", every_nth=1),))
        with fault_scope(plan):
            engine.with_transaction(
                lambda txn: txn.set_vertex_property("Person", 1, "age", 26)
            )
        assert pool.direct_allocs > before
        view = engine.txn_manager.read_view()
        rows = engine.execute(
            "MATCH (p:Person) WHERE p.age = 26 RETURN id(p)", view=view
        ).rows
        assert len(rows) == 1


# -- retry wiring: transactions and injected lock faults -------------------------


class TestTransactionRetry:
    def test_with_transaction_retries_injected_lock_fault(self, micro_store):
        engine = GES(
            micro_store,
            EngineConfig.ges(retry_attempts=4, retry_backoff_ms=0.0),
        )
        plan = FaultPlan(
            rules=(FaultRule(site="locks.acquire", every_nth=1, max_fires=1),)
        )

        def insert(txn):
            txn.add_edge(
                "KNOWS", VertexRef("Person", 3), VertexRef("Person", 4), {"since": 99}
            )
            return "done"

        with fault_scope(plan):
            assert engine.with_transaction(insert) == "done"
        assert plan.total_fired() == 1
        view = engine.txn_manager.read_view()
        rows = engine.execute(
            "MATCH (a:Person)-[:KNOWS]->(b) WHERE a.age > 24 RETURN id(b)",
            view=view,
        ).rows
        assert len(rows) > 0

    def test_no_retry_policy_surfaces_fault(self, micro_store):
        engine = GES(micro_store, EngineConfig.ges())
        assert engine.retry_policy is None
        plan = FaultPlan(
            rules=(FaultRule(site="locks.acquire", every_nth=1, max_fires=1),)
        )

        def insert(txn):
            txn.set_vertex_property("Person", 0, "age", 31)

        with fault_scope(plan):
            with pytest.raises(TransientError):
                engine.with_transaction(insert)
        # The failed transaction held nothing: a plain retry by the caller
        # succeeds because the fault was single-shot.
        with fault_scope(plan):
            engine.with_transaction(insert)


# -- stress with faults ----------------------------------------------------------


class TestStressWithFaults:
    def test_writers_retry_and_invariants_hold(self):
        config = StressConfig(
            seed=11,
            faults=FaultPlan(
                rules=(FaultRule(site="locks.acquire", probability=0.3),), seed=11
            ),
        )
        report = run_stress(config)
        assert report.passed, report.violations[:3]
        assert report.fault_retries > 0

    def test_same_seed_same_interleaving(self):
        config = StressConfig(
            seed=5,
            faults=FaultPlan(
                rules=(FaultRule(site="locks.acquire", probability=0.2),), seed=5
            ),
        )
        a, b = run_stress(config), run_stress(config)
        assert (a.commits, a.fault_retries, a.dropped_batches, a.final_version) == (
            b.commits,
            b.fault_retries,
            b.dropped_batches,
            b.final_version,
        )


# -- chaos campaign --------------------------------------------------------------


class TestChaosCampaign:
    def test_mini_campaign_holds_invariants(self):
        report = run_chaos(
            ChaosConfig(seed=3, iterations=30, graphs=1, stress_runs=1)
        )
        assert report.passed, [str(v) for v in report.violations[:3]]
        assert report.total_fired > 0
        assert "PASS" in report.summary()

    def test_same_seed_same_campaign(self):
        config = ChaosConfig(seed=9, iterations=24, graphs=1, stress_runs=1)
        a, b = run_chaos(config), run_chaos(config)
        assert a.fired == b.fired
        assert a.typed_errors == b.typed_errors
        assert (a.ok, a.queries, a.updates, a.degraded) == (
            b.ok,
            b.queries,
            b.updates,
            b.degraded,
        )

    def test_high_fault_rate_still_no_violations(self):
        report = run_chaos(
            ChaosConfig(
                seed=13,
                iterations=20,
                graphs=1,
                fault_probability=0.4,
                stress_runs=0,
            )
        )
        assert report.passed, [str(v) for v in report.violations[:3]]


# -- corrupt snapshots (satellite: storage/io error wrapping) --------------------


class TestCorruptSnapshots:
    def test_round_trip_still_works(self, micro_store, tmp_path):
        path = save_graph(micro_store, tmp_path / "snap")
        loaded = load_graph(path)
        assert set(loaded.schema.vertex_labels) == set(
            micro_store.schema.vertex_labels
        )

    def test_truncated_npz_names_offending_file(self, micro_store, tmp_path):
        path = save_graph(micro_store, tmp_path / "snap")
        victim = next(iter(sorted(path.glob("*.npz"))))
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])
        with pytest.raises(StorageError, match=victim.name):
            load_graph(path)

    def test_garbage_npz_names_offending_file(self, micro_store, tmp_path):
        path = save_graph(micro_store, tmp_path / "snap")
        victim = next(iter(sorted(path.glob("*.npz"))))
        victim.write_bytes(b"this is not a numpy archive")
        with pytest.raises(StorageError, match=victim.name):
            load_graph(path)

    def test_malformed_schema_json(self, micro_store, tmp_path):
        path = save_graph(micro_store, tmp_path / "snap")
        (path / "schema.json").write_text("{not json")
        with pytest.raises(StorageError, match="schema"):
            load_graph(path)

    def test_schema_missing_keys(self, micro_store, tmp_path):
        path = save_graph(micro_store, tmp_path / "snap")
        (path / "schema.json").write_text(
            json.dumps({"format": 1, "unexpected": []})
        )
        with pytest.raises(StorageError, match="schema"):
            load_graph(path)

    def test_missing_edge_member(self, micro_store, tmp_path):
        path = save_graph(micro_store, tmp_path / "snap")
        victim = next(iter(sorted(path.glob("edges_*.npz"))))
        data = dict(np.load(victim, allow_pickle=True))
        data.pop("__src")
        np.savez(victim, **data)
        # Refresh the manifest so the structural check fires, not the SHA one.
        write_manifest(path)
        with pytest.raises(StorageError, match="__src"):
            load_graph(path)

    def test_tampered_file_fails_manifest_verification(self, micro_store, tmp_path):
        path = save_graph(micro_store, tmp_path / "snap")
        victim = next(iter(sorted(path.glob("edges_*.npz"))))
        data = dict(np.load(victim, allow_pickle=True))
        data.pop("__src")
        np.savez(victim, **data)
        with pytest.raises(StorageError, match="SHA-256"):
            load_graph(path)

    def test_snapshot_load_fault_site(self, micro_store, tmp_path):
        path = save_graph(micro_store, tmp_path / "snap")
        plan = FaultPlan(rules=(FaultRule(site="snapshot.load", every_nth=1),))
        with fault_scope(plan):
            with pytest.raises(TransientError):
                load_graph(path)
        load_graph(path)  # injection gone: load succeeds


# -- driver error accounting (satellite: per-query errors, not aborts) -----------


@pytest.fixture(scope="module")
def sf1():
    return generate("SF1", seed=42)


class TestDriverErrorAccounting:
    def _driver(self, sf1, **kwargs):
        engine = GES(sf1.store, EngineConfig.ges_f_star())
        return BenchmarkDriver(engine, sf1, seed=7, **kwargs)

    def test_ges_error_is_logged_not_raised(self, sf1, monkeypatch):
        def failing(engine, params, stats):
            raise TransientError("injected op failure")

        monkeypatch.setitem(
            LDBC_REGISTRY, "IS1", LdbcQueryDef("IS1", "IS", failing)
        )
        driver = self._driver(sf1)
        report = driver.run(num_operations=60)
        assert len(report.logs) == 60  # the run was not aborted
        failed = [log for log in report.logs if log.error is not None]
        assert failed and all(log.name == "IS1" for log in failed)
        assert all("TransientError" in log.error for log in failed)
        assert all(log.rows == 0 for log in failed)

    def test_error_count_and_summary(self, sf1, monkeypatch):
        def failing(engine, params, stats):
            raise TransientError("boom")

        monkeypatch.setitem(
            LDBC_REGISTRY, "IS2", LdbcQueryDef("IS2", "IS", failing)
        )
        report = self._driver(sf1).run(num_operations=60)
        assert report.error_count("IS2") > 0
        assert report.error_count(category="IS") >= report.error_count("IS2")
        summary = report.latency_summary("IS2")
        assert summary["errors"] == report.error_count("IS2")

    def test_raw_exception_still_aborts_with_repro(self, sf1, monkeypatch):
        def broken(engine, params, stats):
            raise RuntimeError("a bug, not an engine error")

        monkeypatch.setitem(
            LDBC_REGISTRY, "IS3", LdbcQueryDef("IS3", "IS", broken)
        )
        from repro.errors import DriverError

        with pytest.raises(DriverError):
            self._driver(sf1).run(num_operations=60)

    def test_query_timeout_param_installs_deadline(self, sf1, monkeypatch):
        seen = []

        def probe(engine, params, stats):
            seen.append(current_deadline())
            return []

        monkeypatch.setitem(
            LDBC_REGISTRY, "IS4", LdbcQueryDef("IS4", "IS", probe)
        )
        self._driver(sf1, query_timeout=30.0).run(num_operations=60)
        assert seen and all(d is not None for d in seen)

    def test_no_timeout_means_no_deadline(self, sf1, monkeypatch):
        seen = []

        def probe(engine, params, stats):
            seen.append(current_deadline())
            return []

        monkeypatch.setitem(
            LDBC_REGISTRY, "IS5", LdbcQueryDef("IS5", "IS", probe)
        )
        self._driver(sf1).run(num_operations=60)
        assert seen and all(d is None for d in seen)
