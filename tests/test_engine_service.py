"""Tests for the composable engine service: registry, config, facade."""

import pytest

from repro import EngineConfig, GES
from repro.engine import ModuleRegistry, default_registry, open_all_variants
from repro.errors import GesError
from repro.plan import TopK, plan_summary


class TestModuleRegistry:
    def test_register_and_resolve(self):
        registry = ModuleRegistry()
        registry.register("execution", "executor", "custom", "module")
        assert registry.resolve("execution", "executor", "custom") == "module"

    def test_unknown_layer_rejected(self):
        with pytest.raises(GesError):
            ModuleRegistry().register("ghost-layer", "c", "n", None)

    def test_duplicate_rejected(self):
        registry = ModuleRegistry()
        registry.register("storage", "backend", "x", 1)
        with pytest.raises(GesError):
            registry.register("storage", "backend", "x", 2)

    def test_missing_module_error_lists_available(self):
        registry = default_registry()
        with pytest.raises(GesError, match="factorized"):
            registry.resolve("execution", "executor", "ghost")

    def test_default_registry_inventory(self):
        inventory = default_registry().describe()
        assert inventory["execution.executor"] == ["factorized", "flat"]
        assert inventory["execution.optimizer"] == ["fusion", "none"]
        assert inventory["frontend.parser"] == ["cypher"]

    def test_available(self):
        assert default_registry().available("execution", "primitives") == [
            "f-tree", "flat-block",
        ]


class TestEngineConfig:
    def test_variant_presets(self):
        assert EngineConfig.ges().executor == "flat"
        assert EngineConfig.ges_f().optimizer == "none"
        assert EngineConfig.ges_f_star().optimizer == "fusion"

    def test_names(self):
        assert EngineConfig.ges().name == "GES"
        assert EngineConfig.ges_f().name == "GES_f"
        assert EngineConfig.ges_f_star().name == "GES_f*"


class TestService:
    def test_default_variant_is_fused(self, micro_store):
        engine = GES(micro_store)
        assert engine.variant == "GES_f*"

    def test_plan_applies_optimizer(self, micro_store):
        engine = GES(micro_store, EngineConfig.ges_f_star())
        plan = engine.plan(
            "MATCH (m:Message) RETURN m.length AS len ORDER BY len DESC LIMIT 2"
        )
        assert any(isinstance(op, TopK) for op in plan.ops)

    def test_plan_without_optimizer(self, micro_store):
        engine = GES(micro_store, EngineConfig.ges_f())
        plan = engine.plan(
            "MATCH (m:Message) RETURN m.length AS len ORDER BY len DESC LIMIT 2"
        )
        assert not any(isinstance(op, TopK) for op in plan.ops)

    def test_construct_from_schema(self, micro_schema):
        engine = GES(micro_schema)
        assert engine.store.vertex_count == 0

    def test_describe(self, micro_store):
        info = GES(micro_store).describe()
        assert info["variant"] == "GES_f*"
        assert info["vertices"] == micro_store.vertex_count
        assert "execution.executor" in info["modules"]

    def test_open_all_variants_share_store(self, micro_store):
        engines = open_all_variants(micro_store)
        assert set(engines) == {"GES", "GES_f", "GES_f*"}
        assert all(e.store is micro_store for e in engines.values())

    def test_custom_module_composition(self, micro_store):
        """Register a custom executor module and compose an engine with it."""
        calls = []

        def tracing_executor(plan, view, params=None, stats=None):
            from repro.exec import execute_flat

            calls.append(plan)
            return execute_flat(plan, view, params, stats)

        registry = default_registry()
        registry.register("execution", "executor", "tracing", tracing_executor)
        config = EngineConfig(name="traced", executor="tracing", optimizer="none")
        engine = GES(micro_store, config, registry)
        result = engine.execute("MATCH (p:Person) RETURN count(*) AS n")
        assert result.rows == [(5,)]
        assert len(calls) == 1

    def test_reads_after_write_use_snapshot(self, micro_store):
        engine = GES(micro_store)
        before = engine.execute("MATCH (p:Person) RETURN count(*) AS n").rows[0][0]
        txn = engine.transaction()
        txn.add_vertex("Person", {"id": 90, "firstName": "Q", "age": 3})
        txn.commit()
        after = engine.execute("MATCH (p:Person) RETURN count(*) AS n").rows[0][0]
        assert after == before + 1
