"""Tests for the adjMeta/adjArray adjacency storage (paper Fig. 9)."""

import numpy as np
import pytest

from repro.storage.adjacency import MAX_VERSION, TOMBSTONE, AdjacencyList
from repro.storage.catalog import AdjacencyKey, Direction, PropertyDef
from repro.types import DataType


def make_list(num_src=4, props=None) -> AdjacencyList:
    key = AdjacencyKey("A", "E", "B", Direction.OUT)
    return AdjacencyList(key, props, num_src=num_src)


def loaded_list() -> AdjacencyList:
    adj = make_list(num_src=3, props=[PropertyDef("w", DataType.INT64)])
    adj.bulk_load(
        3,
        np.asarray([0, 0, 1, 2, 2, 2]),
        np.asarray([10, 11, 12, 13, 14, 15]),
        {"w": np.asarray([1, 2, 3, 4, 5, 6])},
    )
    return adj


class TestBulkLoad:
    def test_neighbors_grouped_by_source(self):
        adj = loaded_list()
        assert adj.neighbors(0).tolist() == [10, 11]
        assert adj.neighbors(1).tolist() == [12]
        assert adj.neighbors(2).tolist() == [13, 14, 15]

    def test_num_edges(self):
        assert loaded_list().num_edges == 6

    def test_degree(self):
        adj = loaded_list()
        assert adj.degree(0) == 2
        assert adj.degree(2) == 3

    def test_out_of_range_source_is_empty(self):
        adj = loaded_list()
        assert adj.neighbors(99).tolist() == []
        assert adj.degree(99) == 0

    def test_negative_source_is_empty(self):
        # Regression: negative rows used to wrap around via numpy indexing
        # and silently return the *last* source's neighborhood.
        adj = loaded_list()
        assert adj.neighbors(-1).tolist() == []
        assert adj.neighbor_slots(-1).tolist() == []
        assert adj.degree(-1) == 0
        assert len(adj.segment(-1)) == 0
        assert not adj.remove_edge(-1, 10)

    def test_bulk_load_out_of_range_source_rejected(self):
        # Regression: rows >= num_src used to surface as a raw numpy
        # ValueError from bincount instead of a StorageError.
        from repro.errors import StorageError

        adj = make_list(num_src=2)
        with pytest.raises(StorageError, match="source rows"):
            adj.bulk_load(2, np.asarray([0, 5]), np.asarray([1, 2]))
        with pytest.raises(StorageError, match="source rows"):
            adj.bulk_load(2, np.asarray([-1, 0]), np.asarray([1, 2]))

    def test_edge_props_aligned(self):
        adj = loaded_list()
        slots = adj.neighbor_slots(2)
        assert adj.gather_prop("w", slots).tolist() == [4, 5, 6]

    def test_unsorted_input_is_grouped(self):
        adj = make_list(num_src=2)
        adj.bulk_load(2, np.asarray([1, 0, 1]), np.asarray([5, 6, 7]))
        assert adj.neighbors(0).tolist() == [6]
        assert adj.neighbors(1).tolist() == [5, 7]

    def test_length_mismatch_rejected(self):
        adj = make_list()
        with pytest.raises(Exception):
            adj.bulk_load(2, np.asarray([0]), np.asarray([1, 2]))

    def test_unknown_prop_rejected(self):
        adj = make_list()
        with pytest.raises(Exception):
            adj.bulk_load(1, np.asarray([0]), np.asarray([1]), {"ghost": np.asarray([1])})


class TestSegments:
    def test_segment_matches_neighbors(self):
        adj = loaded_list()
        seg = adj.segment(2)
        assert seg.materialize().tolist() == [13, 14, 15]

    def test_supports_segments_initially(self):
        assert loaded_list().supports_segments

    def test_meta_for_vectorized(self):
        adj = loaded_list()
        base, starts, lengths = adj.meta_for(np.asarray([2, 0, 99, -5]))
        assert lengths.tolist() == [3, 2, 0, 0]
        assert base[starts[0] : starts[0] + lengths[0]].tolist() == [13, 14, 15]

    def test_tombstone_disables_segments(self):
        adj = loaded_list()
        adj.remove_edge(0, 10)
        assert not adj.supports_segments


class TestUpdates:
    def test_add_edge_to_new_source(self):
        adj = make_list(num_src=1)
        adj.add_edge(0, 7)
        assert adj.neighbors(0).tolist() == [7]

    def test_add_edge_grows_source_range(self):
        adj = make_list(num_src=1)
        adj.add_edge(5, 9)
        assert adj.num_src == 6
        assert adj.neighbors(5).tolist() == [9]

    def test_slot_relocation_on_overflow(self):
        adj = make_list(num_src=2)
        for i in range(20):
            adj.add_edge(0, i)
        assert adj.neighbors(0).tolist() == list(range(20))

    def test_interleaved_sources(self):
        adj = make_list(num_src=2)
        for i in range(10):
            adj.add_edge(i % 2, i)
        assert adj.neighbors(0).tolist() == [0, 2, 4, 6, 8]
        assert adj.neighbors(1).tolist() == [1, 3, 5, 7, 9]

    def test_remove_edge_tombstones(self):
        adj = loaded_list()
        assert adj.remove_edge(2, 14)
        assert adj.neighbors(2).tolist() == [13, 15]
        assert adj.num_edges == 5

    def test_remove_missing_edge_returns_false(self):
        adj = loaded_list()
        assert not adj.remove_edge(0, 999)

    def test_add_edge_with_props(self):
        adj = make_list(num_src=1, props=[PropertyDef("w", DataType.INT64)])
        slot = adj.add_edge(0, 3, {"w": 42})
        assert adj.prop_at("w", slot) == 42

    def test_add_edge_missing_prop_is_null(self):
        adj = make_list(num_src=1, props=[PropertyDef("w", DataType.INT64)])
        slot = adj.add_edge(0, 3)
        assert adj.prop_at("w", slot) is None
        validity = adj.gather_prop_validity("w", np.asarray([slot]))
        assert validity is not None and not validity[0]


class TestVersioning:
    def test_versioned_add_invisible_to_older_snapshot(self):
        adj = loaded_list()
        adj.add_edge(0, 99, version=5)
        assert 99 not in adj.neighbors(0, version=4).tolist()
        assert 99 in adj.neighbors(0, version=5).tolist()

    def test_versioned_delete_visible_to_older_snapshot(self):
        adj = loaded_list()
        adj.add_edge(0, 99, version=1)  # forces version stamps
        adj.remove_edge(0, 10, version=5)
        assert 10 in adj.neighbors(0, version=4).tolist()
        assert 10 not in adj.neighbors(0, version=5).tolist()

    def test_latest_read_hides_version_deleted(self):
        adj = loaded_list()
        adj.add_edge(0, 99, version=1)
        adj.remove_edge(0, 10, version=5)
        assert 10 not in adj.neighbors(0).tolist()

    def test_num_edges_counts_versioned_deletes(self):
        # Regression: num_edges only discounted tombstoned slots, so a
        # versioned delete left the count (and store.edge_count) unchanged.
        adj = loaded_list()
        adj.add_edge(0, 99, version=1)
        assert adj.num_edges == 7
        adj.remove_edge(0, 10, version=5)
        assert adj.num_edges == 6

    def test_versioning_disables_segments(self):
        adj = loaded_list()
        adj.add_edge(0, 99, version=1)
        assert not adj.supports_segments

    def test_relocation_preserves_version_stamps(self):
        adj = make_list(num_src=1, props=[])
        adj.add_edge(0, 1, version=1)
        for i in range(2, 20):
            adj.add_edge(0, i, version=2)
        assert 1 in adj.neighbors(0, version=1).tolist()
        assert 5 not in adj.neighbors(0, version=1).tolist()

    def test_nbytes_positive(self):
        assert loaded_list().nbytes > 0
