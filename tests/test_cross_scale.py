"""Cross-scale integration: datagen statistics, validation, and densification
trends across every mini scale factor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend.cypher import parse_cypher
from repro.frontend.cypher.lexer import TokenType, tokenize
from repro.ldbc import SCALE_FACTORS, generate, validate


@pytest.fixture(scope="module")
def small_scales():
    return {name: generate(name, seed=42) for name in ("SF1", "SF10")}


class TestScaleTrends:
    def test_entity_counts_grow_with_scale(self, small_scales):
        sf1, sf10 = small_scales["SF1"].info, small_scales["SF10"].info
        assert sf10.num_persons > sf1.num_persons
        assert sf10.num_messages > sf1.num_messages
        assert sf10.num_knows_pairs > sf1.num_knows_pairs

    def test_densification(self, small_scales):
        """Average degree grows with scale (the paper's SF trend)."""
        def avg_degree(dataset):
            return 2 * dataset.info.num_knows_pairs / dataset.info.num_persons

        assert avg_degree(small_scales["SF10"]) > avg_degree(small_scales["SF1"])

    def test_all_scale_names_generate(self):
        # SF30/SF100/SF300 are exercised by the benchmarks; here just check
        # the parameters are well-formed and ordered.
        persons = [SCALE_FACTORS[n].persons for n in ("SF1", "SF10", "SF30", "SF100", "SF300")]
        degrees = [SCALE_FACTORS[n].avg_degree for n in ("SF1", "SF10", "SF30", "SF100", "SF300")]
        assert persons == sorted(persons)
        assert degrees == sorted(degrees)


class TestCrossScaleValidation:
    @pytest.mark.parametrize("scale", ["SF1", "SF10"])
    def test_engines_agree(self, scale, small_scales):
        report = validate(small_scales[scale], draws=1, seed=3)
        assert report.passed, f"{scale}: {report.summary()}"


class TestCypherRoundTripProperties:
    @given(st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True))
    @settings(max_examples=60, deadline=None)
    def test_identifiers_tokenize_round_trip(self, name):
        tokens = tokenize(name)
        if tokens[0].type is TokenType.KEYWORD:
            return  # reserved words are keywords, not identifiers
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == name

    @given(st.integers(0, 10**12))
    @settings(max_examples=40, deadline=None)
    def test_integer_literals_round_trip(self, value):
        query = parse_cypher(f"MATCH (p:Person) WHERE p.id = {value} RETURN id(p)")
        where = query.clauses[0].where
        assert where.right.value == value

    @given(st.text(alphabet=st.characters(blacklist_characters="'\\\n", min_codepoint=32,
                                          max_codepoint=126), max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_string_literals_round_trip(self, text):
        query = parse_cypher(f"MATCH (p:Person) WHERE p.name = '{text}' RETURN id(p)")
        assert query.clauses[0].where.right.value == text

    @given(st.integers(1, 4), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_hop_ranges_round_trip(self, lo, extra):
        hi = lo + extra
        query = parse_cypher(f"MATCH (a:Person)-[:KNOWS*{lo}..{hi}]->(b) RETURN id(b)")
        rel = query.clauses[0].path.rels[0]
        assert (rel.min_hops, rel.max_hops) == (lo, hi)
