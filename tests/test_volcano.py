"""Tests specific to the Volcano tuple-at-a-time baseline engine."""

import numpy as np
import pytest

from repro.baselines.volcano import VolcanoEngine, _Desc
from repro.errors import ExecutionError
from repro.plan import (
    AggSpec,
    Aggregate,
    Col,
    Distinct,
    Expand,
    Filter,
    GetProperty,
    Limit,
    LogicalPlan,
    NodeByIdSeek,
    NodeByRows,
    NodeScan,
    OrderBy,
    ProcedureCall,
    Project,
    TopK,
    lit,
    param,
)
from repro.storage.catalog import Direction
from repro.storage.graph import VertexRef


@pytest.fixture
def engine(micro_store):
    return VolcanoEngine(micro_store)


class TestBasics:
    def test_variant_name(self, engine):
        assert engine.variant == "Volcano"

    def test_plan_is_identity(self, engine):
        plan = LogicalPlan([NodeScan("p", "Person")])
        assert engine.plan(plan) is plan

    def test_seek(self, engine):
        plan = LogicalPlan([NodeByIdSeek("p", "Person", param("k"))])
        assert engine.execute(plan, {"k": 2}).rows == [(2,)]

    def test_scan_and_filter(self, engine):
        plan = LogicalPlan(
            [
                NodeScan("p", "Person"),
                GetProperty("p", "age", "age"),
                Filter(Col("age") >= lit(35)),
            ],
            returns=["p"],
        )
        assert sorted(r[0] for r in engine.execute(plan).rows) == [2, 4]

    def test_node_by_rows(self, engine):
        plan = LogicalPlan([NodeByRows("p", "Person", "rows")])
        out = engine.execute(plan, {"rows": np.asarray([3, 1])})
        assert [r[0] for r in out.rows] == [3, 1]

    def test_edge_props(self, engine):
        plan = LogicalPlan(
            [
                NodeByIdSeek("p", "Person", lit(0)),
                Expand("p", "f", "KNOWS", Direction.OUT, edge_props={"since": "since"}),
            ],
            returns=["f", "since"],
        )
        assert sorted(engine.execute(plan).rows) == [(1, 10), (2, 20)]

    def test_neighbor_filter_pushdown_supported(self, engine):
        plan = LogicalPlan(
            [
                NodeByIdSeek("p", "Person", lit(0)),
                Expand(
                    "p", "f", "KNOWS", Direction.OUT,
                    neighbor_props={"age": "age"},
                    neighbor_filter=Col("age") > lit(26),
                ),
            ],
            returns=["f", "age"],
        )
        assert engine.execute(plan).rows == [(2, 35)]

    def test_optional_expand(self, engine):
        plan = LogicalPlan(
            [
                NodeByIdSeek("p", "Person", lit(0)),
                Expand("p", "m", "HAS_CREATOR", Direction.IN, to_label="Message",
                       optional=True),
            ],
            returns=["m"],
        )
        assert engine.execute(plan).rows == [(None,)]

    def test_aggregate_and_topk(self, engine):
        plan = LogicalPlan(
            [
                NodeScan("m", "Message"),
                Expand("m", "c", "HAS_CREATOR", Direction.OUT, to_label="Person"),
                GetProperty("c", "id", "cid"),
                Aggregate(["cid"], [AggSpec("n", "count")]),
                TopK([("n", False), ("cid", True)], 2),
            ],
            returns=["cid", "n"],
        )
        assert engine.execute(plan).rows == [(2, 2), (3, 2)]

    def test_distinct(self, engine):
        plan = LogicalPlan(
            [
                NodeScan("p", "Person"),
                GetProperty("p", "firstName", "n"),
                Distinct(["n"]),
                OrderBy([("n", True)]),
            ],
            returns=["n"],
        )
        assert [r[0] for r in engine.execute(plan).rows] == ["A", "B", "C", "E"]

    def test_procedure(self, engine):
        plan = LogicalPlan(
            [ProcedureCall("shortest_path_length",
                           {"person1_id": lit(0), "person2_id": lit(4)})],
            returns=["length"],
        )
        assert engine.execute(plan).rows == [(2,)]

    def test_stats_populated(self, engine):
        plan = LogicalPlan([NodeScan("p", "Person")])
        result = engine.execute(plan)
        assert result.stats.peak_intermediate_bytes > 0
        assert "NodeScan" in result.stats.op_times

    def test_transaction_surface(self, engine, micro_store):
        txn = engine.transaction()
        txn.add_vertex("Person", {"id": 77, "firstName": "V", "age": 1})
        txn.commit()
        assert engine.read_view().vertex_by_key("Person", 77) is not None


class TestDescHelper:
    def test_order_inverted(self):
        assert _Desc(2) < _Desc(1)

    def test_equality(self):
        assert _Desc(3) == _Desc(3)
        assert not (_Desc(3) == 3)

    def test_sorted_with_ties_stable(self):
        rows = [("a", 1), ("b", 1), ("c", 2)]
        out = sorted(rows, key=lambda r: (_Desc(r[1]), r[0]))
        assert out == [("c", 2), ("a", 1), ("b", 1)]
